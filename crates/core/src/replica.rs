//! The Multi-BFT replica node.
//!
//! One [`ReplicaNode`] hosts everything a replica runs in the paper's
//! architecture (Fig. 2): the partition module (buckets), one PBFT
//! sequenced-broadcast instance per bucket, the ordering module (partial
//! logs, a global-ordering policy and the global log) and the execution
//! module (escrow + object store). The same node implements Orthrus and all
//! five baselines; the [`ProtocolKind`] only changes which ordering policy is
//! used and whether payments take the partial-ordering fast path.

use crate::messages::{NetMessage, ReplyStatus};
use crate::partition::{Bucket, Partitioner};
use orthrus_execution::{Executor, ObjectStore, TxOutcome};
use orthrus_ordering::{
    DqbftOrdering, GlobalLog, GlobalOrderingPolicy, LadonOrdering, PartialLogs,
    PredeterminedOrdering, RankTracker,
};
use orthrus_sb::{PbftConfig, PbftInstance, ProgressTracker, SbAction};
use orthrus_sim::{Actor, Context, LatencyStage, NodeId};
use orthrus_types::{
    Block, BlockId, BlockParams, Digest, Duration, Epoch, ExecutionMode, InstanceId,
    ProtocolConfig, ProtocolKind, ReplicaId, SharedBlock, SharedTx, SimTime, StableCheckpoint,
    SystemState, TxId,
};
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Timer tag base: leader batch timer (try to propose in every instance we
/// lead).
const TIMER_BATCH: u64 = 1;
/// Timer tag base: failure detector sweep.
const TIMER_FAILURE_DETECTOR: u64 = 2;
/// Timer tag base: crash-recovery sync round (only armed while syncing).
const TIMER_RECOVERY_SYNC: u64 = 3;
/// Timer tags carry a restart epoch in their upper bits so a timer armed
/// before a crash cannot fire into the state installed after recovery:
/// `tag = epoch * TIMER_EPOCH_STRIDE + base`.
const TIMER_EPOCH_STRIDE: u64 = 8;

/// The global-ordering policy selected by the protocol.
#[derive(Clone)]
pub(crate) enum Policy {
    Predetermined(PredeterminedOrdering),
    Dqbft(DqbftOrdering),
    Ladon(LadonOrdering),
}

impl Policy {
    fn for_protocol(protocol: ProtocolKind, m: u32) -> Self {
        match protocol {
            ProtocolKind::Iss | ProtocolKind::MirBft | ProtocolKind::Rcc => {
                Policy::Predetermined(PredeterminedOrdering::new(m))
            }
            ProtocolKind::Dqbft => Policy::Dqbft(DqbftOrdering::new()),
            ProtocolKind::Ladon | ProtocolKind::Orthrus => Policy::Ladon(LadonOrdering::new(m)),
        }
    }

    fn on_deliver(&mut self, block: SharedBlock) -> Vec<SharedBlock> {
        match self {
            Policy::Predetermined(p) => p.on_deliver(block),
            Policy::Dqbft(p) => p.on_deliver(block),
            Policy::Ladon(p) => p.on_deliver(block),
        }
    }

    fn on_order_decision(&mut self, id: orthrus_types::BlockId) -> Vec<SharedBlock> {
        match self {
            Policy::Predetermined(p) => p.on_order_decision(id),
            Policy::Dqbft(p) => p.on_order_decision(id),
            Policy::Ladon(p) => p.on_order_decision(id),
        }
    }

    fn pending(&self) -> usize {
        match self {
            Policy::Predetermined(p) => p.pending(),
            Policy::Dqbft(p) => p.pending(),
            Policy::Ladon(p) => p.pending(),
        }
    }
}

/// The lightweight snapshot a replica refreshes at every stable checkpoint:
/// the quorum certificates in force plus the executor's incremental state
/// digest at the moment of stabilisation. The cheap part (per-shard
/// incremental digests, O(m)) is taken eagerly; the expensive part (cloning
/// the store's shards) is deferred to state-transfer time
/// ("clone-on-snapshot"), when a recovering peer actually asks for it.
#[derive(Debug, Clone)]
pub struct CheckpointAnchor {
    /// The latest stable-checkpoint certificate of every instance that has
    /// one, in instance order.
    pub checkpoints: Vec<StableCheckpoint>,
    /// Executor state digest at the moment the anchor was refreshed.
    pub store_digest: Digest,
    /// Virtual time of the refresh.
    pub taken_at: SimTime,
}

/// Consensus- and ordering-layer catch-up state carried by a state transfer
/// so a restarted replica can rejoin mid-run, not just adopt balances.
#[derive(Clone)]
pub(crate) struct CatchUp {
    pub(crate) instances: Vec<PbftInstance>,
    pub(crate) plogs: PartialLogs,
    pub(crate) glog: GlobalLog,
    pub(crate) executed_state: SystemState,
    pub(crate) stable: SystemState,
    pub(crate) stable_certs: Vec<Option<StableCheckpoint>>,
    pub(crate) policy: Policy,
    pub(crate) rank: RankTracker,
    pub(crate) buckets: Vec<Bucket>,
    pub(crate) replied: HashSet<TxId>,
    pub(crate) pending_order_decisions: Vec<orthrus_types::BlockId>,
    pub(crate) delivered_blocks: u64,
}

/// A crash-recovery state transfer: everything a restarted replica installs
/// to rejoin the run (paper §V-D's checkpoint-anchored recovery, carried
/// over the simulated network as one message).
///
/// The honest-peer assumption of the simulation applies: the receiver adopts
/// the sender's observed protocol state wholesale. A deployment would fetch
/// the same payload from `f + 1` peers and cross-check it against the
/// checkpoint certificates (which travel along precisely so that check is
/// possible — `StableCheckpoint::verify`).
pub struct StateTransfer {
    /// The latest stable-checkpoint certificate per instance at the sender.
    pub checkpoint: Vec<StableCheckpoint>,
    /// The sender's sharded execution state: the object-store shards (the
    /// paper's state payload) plus the escrow log and per-transaction
    /// outcome bookkeeping that make installation exact.
    pub shards: Executor,
    /// Consensus/ordering catch-up state (private to the crate).
    pub(crate) catch_up: CatchUp,
    /// Monotone progress mark of the sender (delivered blocks + global-log
    /// length); installs are fast-forward only.
    pub(crate) mark: u64,
    /// Estimated wire size, computed once at build time.
    pub(crate) wire_bytes: u64,
}

impl StateTransfer {
    /// Estimated bytes this transfer occupies on the wire.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// The sender's monotone progress mark (delivered blocks across all
    /// instances plus global-log length).
    pub fn progress_mark(&self) -> u64 {
        self.mark
    }
}

impl std::fmt::Debug for StateTransfer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateTransfer")
            .field("checkpoints", &self.checkpoint.len())
            .field("objects", &self.shards.store().len())
            .field("mark", &self.mark)
            .field("wire_bytes", &self.wire_bytes)
            .finish_non_exhaustive()
    }
}

/// Equality by identity: transfers are `Arc`-shared snapshots, and message
/// equality (used only by tests over small control messages) never needs to
/// compare two distinct snapshots structurally.
impl PartialEq for StateTransfer {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self, other)
    }
}

/// A Multi-BFT replica (Orthrus or one of the baselines).
pub struct ReplicaNode {
    me: ReplicaId,
    protocol: ProtocolKind,
    config: ProtocolConfig,
    partitioner: Partitioner,
    buckets: Vec<Bucket>,
    instances: Vec<PbftInstance>,
    plogs: PartialLogs,
    glog: GlobalLog,
    policy: Policy,
    executor: Executor,
    rank: RankTracker,
    progress: ProgressTracker,
    /// Blocks whose partial-log execution has completed, per instance.
    executed_state: SystemState,
    /// DQBFT: data-block ids awaiting a slot in the ordering instance
    /// (only used by the ordering instance's leader).
    pending_order_decisions: Vec<orthrus_types::BlockId>,
    /// Transactions already answered to their client.
    replied: HashSet<TxId>,
    /// Undetectable-fault behaviour: keep leading our own instance but ignore
    /// every other instance (paper §VII-E).
    selfish: bool,
    /// Total number of blocks this replica delivered across instances.
    delivered_blocks: u64,
    /// Worker count for the parallel plog pool (`sweep_threads()`, resolved
    /// once at construction — it cannot change mid-run and sits on the
    /// delivery hot path).
    pool_threads: usize,
    /// Per-instance stable-checkpoint frontier (drives log truncation).
    stable: SystemState,
    /// Latest stable-checkpoint certificate per instance.
    stable_certs: Vec<Option<StableCheckpoint>>,
    /// Snapshot anchor refreshed at every stable checkpoint.
    anchor: Option<CheckpointAnchor>,
    /// Peak retained log entries observed (plog + glog payloads + PBFT
    /// slots).
    peak_retained_entries: u64,
    /// Peak retained log bytes observed (plog + glog payload estimate).
    peak_retained_bytes: u64,
    /// True between a crash-recover restart and the first installed state
    /// transfer: consensus traffic is ignored (the local state is stale).
    recovering: bool,
    /// True while the recovery sync loop is still requesting transfers.
    syncing: bool,
    /// Did any transfer advance us since the last sync round fired?
    sync_advanced: bool,
    /// Sync rounds issued since restart (rotates the request targets).
    sync_round: u64,
    /// Virtual time the first state transfer was installed after a restart.
    recovered_at: Option<SimTime>,
    /// Restart epoch carried in timer tags (see `TIMER_EPOCH_STRIDE`).
    timer_epoch: u64,
    /// Virtual time each block entered the glog's pending region, keyed by
    /// block id. Entries are removed when the block executes; the delta feeds
    /// the per-run glog-wait statistics (how long global ordering stalls
    /// behind partial-log execution under §V-C's alignment rule).
    glog_appended_at: HashMap<BlockId, SimTime>,
}

impl ReplicaNode {
    /// Build a replica for `protocol` with the given genesis state. The
    /// genesis store is resharded to one account shard per SB instance, so
    /// the executor's state layout mirrors the partition module's bucket
    /// layout (digests are shard-count independent, so this never changes
    /// what the replica computes).
    pub fn new(
        me: ReplicaId,
        protocol: ProtocolKind,
        config: ProtocolConfig,
        mut genesis: ObjectStore,
    ) -> Self {
        let m = config.num_instances;
        genesis.reshard(m);
        let total_instances = if protocol == ProtocolKind::Dqbft {
            m + 1
        } else {
            m
        };
        let instances = (0..total_instances)
            .map(|i| {
                PbftInstance::new(PbftConfig {
                    instance: InstanceId::new(i),
                    me,
                    num_replicas: config.num_replicas,
                    checkpoint_interval: config.checkpoint_interval,
                })
            })
            .collect();
        Self {
            me,
            protocol,
            partitioner: Partitioner::new(m),
            buckets: (0..m).map(|_| Bucket::new()).collect(),
            instances,
            plogs: PartialLogs::new(m),
            glog: GlobalLog::new(),
            policy: Policy::for_protocol(protocol, m),
            executor: Executor::with_store(genesis),
            rank: RankTracker::new(),
            progress: ProgressTracker::new(config.view_change_timeout),
            executed_state: SystemState::new(m as usize),
            pending_order_decisions: Vec::new(),
            replied: HashSet::new(),
            selfish: false,
            delivered_blocks: 0,
            pool_threads: crate::runner::sweep_threads(),
            stable: SystemState::new(total_instances as usize),
            stable_certs: vec![None; total_instances as usize],
            anchor: None,
            peak_retained_entries: 0,
            peak_retained_bytes: 0,
            recovering: false,
            syncing: false,
            sync_advanced: false,
            sync_round: 0,
            recovered_at: None,
            timer_epoch: 0,
            glog_appended_at: HashMap::new(),
            config,
        }
    }

    /// Mark this replica as a "selfish" Byzantine node: it keeps proposing in
    /// the instance it leads but ignores all other instances (undetectable
    /// fault of §VII-E).
    pub fn set_selfish(&mut self, selfish: bool) {
        self.selfish = selfish;
    }

    /// The protocol this replica runs.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// Access to the execution engine (final balances, outcomes, digests).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The replica's global log (for cross-replica agreement checks).
    pub fn global_log(&self) -> &GlobalLog {
        &self.glog
    }

    /// Number of blocks delivered across all SB instances.
    pub fn delivered_blocks(&self) -> u64 {
        self.delivered_blocks
    }

    /// Number of transactions this replica has confirmed to clients.
    pub fn confirmed_transactions(&self) -> usize {
        self.replied.len()
    }

    /// The per-instance stable-checkpoint frontier (what truncation has been
    /// driven by).
    pub fn stable_frontier(&self) -> &SystemState {
        &self.stable
    }

    /// The snapshot anchor refreshed at the latest stable checkpoint, if any
    /// checkpoint has formed yet.
    pub fn checkpoint_anchor(&self) -> Option<&CheckpointAnchor> {
        self.anchor.as_ref()
    }

    /// Log entries currently retained: partial-log blocks, global-log
    /// payloads and PBFT per-sequence slots. With checkpoint GC on this
    /// plateaus at the in-flight window; with GC off it grows with the run.
    pub fn retained_log_entries(&self) -> u64 {
        self.plogs.total_blocks() as u64
            + self.glog.retained_len() as u64
            + self
                .instances
                .iter()
                .map(|i| i.retained_slots() as u64)
                .sum::<u64>()
    }

    /// Wire-size estimate of the retained partial/global-log payloads.
    pub fn retained_log_bytes(&self) -> u64 {
        self.plogs.retained_bytes() + self.glog.retained_bytes()
    }

    /// Peak of [`ReplicaNode::retained_log_entries`] over the run.
    pub fn peak_retained_entries(&self) -> u64 {
        self.peak_retained_entries
    }

    /// Peak of [`ReplicaNode::retained_log_bytes`] over the run.
    pub fn peak_retained_bytes(&self) -> u64 {
        self.peak_retained_bytes
    }

    /// Virtual time this replica completed crash recovery (installed its
    /// first state transfer after a restart), if it did.
    pub fn recovered_at(&self) -> Option<SimTime> {
        self.recovered_at
    }

    /// The DQBFT ordering instance id (one past the data instances).
    fn ordering_instance(&self) -> InstanceId {
        InstanceId::new(self.config.num_instances)
    }

    fn is_ordering_instance(&self, instance: InstanceId) -> bool {
        self.protocol == ProtocolKind::Dqbft && instance == self.ordering_instance()
    }

    fn all_replicas(&self) -> Vec<NodeId> {
        (0..self.config.num_replicas)
            .filter(|r| ReplicaId::new(*r) != self.me)
            .map(NodeId::replica)
            .collect()
    }

    /// Snapshot of the delivered state `S` across all data instances, used as
    /// the `b.S` reference in new proposals.
    fn delivered_state(&self) -> SystemState {
        let mut state = SystemState::new(self.config.num_instances as usize);
        for (idx, inst) in self
            .instances
            .iter()
            .enumerate()
            .take(self.config.num_instances as usize)
        {
            if let Some(sn) = inst.last_delivered() {
                state.observe(InstanceId::new(idx as u32), sn);
            }
        }
        state
    }

    // ------------------------------------------------------------------
    // Outbound plumbing
    // ------------------------------------------------------------------

    fn apply_sb_actions(
        &mut self,
        instance: InstanceId,
        actions: Vec<SbAction>,
        ctx: &mut Context<'_, NetMessage>,
    ) {
        for action in actions {
            match action {
                SbAction::Send { to, msg } => {
                    ctx.send(
                        NodeId::Replica(to),
                        NetMessage::Consensus {
                            instance,
                            inner: msg,
                        },
                    );
                }
                SbAction::Broadcast { msg } => {
                    let targets = self.all_replicas();
                    ctx.multicast(
                        targets,
                        NetMessage::Consensus {
                            instance,
                            inner: msg,
                        },
                    );
                }
                SbAction::Deliver { block } => {
                    self.on_block_delivered(instance, block, ctx);
                }
                SbAction::ViewChanged { leader, .. } => {
                    ctx.stats().view_change_completed();
                    self.progress.record_progress(instance, ctx.now());
                    // Make sure the new leader knows about every transaction
                    // still pending in this bucket: the old leader may have
                    // been the only replica the client contacted.
                    if leader != self.me && !self.is_ordering_instance(instance) {
                        let pending: Vec<SharedTx> =
                            self.buckets[instance.as_usize()].pull(usize::MAX, |_| true);
                        for tx in pending {
                            ctx.send(
                                NodeId::Replica(leader),
                                NetMessage::ClientRequest {
                                    tx: Arc::clone(&tx),
                                },
                            );
                            // Keep a local reference so censorship by the new
                            // leader can still be detected.
                            self.buckets[instance.as_usize()].push(tx);
                        }
                    }
                }
                SbAction::StableCheckpoint { checkpoint } => {
                    self.on_stable_checkpoint(instance, checkpoint, ctx);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Checkpoints, garbage collection and snapshots
    // ------------------------------------------------------------------

    /// A PBFT instance certified a stable checkpoint: advance the truncation
    /// frontier, release partial/global-log payloads below it (when
    /// checkpoint GC is on) and refresh the snapshot anchor.
    fn on_stable_checkpoint(
        &mut self,
        instance: InstanceId,
        checkpoint: StableCheckpoint,
        ctx: &mut Context<'_, NetMessage>,
    ) {
        debug_assert_eq!(checkpoint.instance, instance);
        self.stable.observe(instance, checkpoint.seq);
        let idx = instance.as_usize();
        if idx < self.stable_certs.len() {
            self.stable_certs[idx] = Some(checkpoint.clone());
        }
        if self.config.checkpoint_gc {
            if !self.is_ordering_instance(instance) {
                self.plogs.get_mut(instance).truncate_before(checkpoint.seq);
            }
            self.glog.truncate_before(&self.stable);
        }
        let certs = self.stable_certs.iter().flatten().cloned().collect();
        self.refresh_anchor(certs, ctx.now());
        self.sample_retention();
    }

    /// Rebuild the snapshot anchor from a certificate set: the one place the
    /// anchor's contents are assembled, shared by the checkpoint path and
    /// the state-transfer install path.
    fn refresh_anchor(&mut self, checkpoints: Vec<StableCheckpoint>, now: SimTime) {
        self.anchor = (!checkpoints.is_empty()).then(|| CheckpointAnchor {
            checkpoints,
            store_digest: self.executor.state_digest(),
            taken_at: now,
        });
    }

    /// Update the peak retained-entry/byte high-water marks. Called after
    /// every delivery and truncation, so the peaks reflect what the logs
    /// actually held between checkpoints.
    fn sample_retention(&mut self) {
        let entries = self.retained_log_entries();
        let bytes = self.retained_log_bytes();
        self.peak_retained_entries = self.peak_retained_entries.max(entries);
        self.peak_retained_bytes = self.peak_retained_bytes.max(bytes);
    }

    fn confirm_tx(&mut self, tx: TxId, outcome: TxOutcome, ctx: &mut Context<'_, NetMessage>) {
        if !self.replied.insert(tx) {
            return;
        }
        let now = ctx.now();
        ctx.stats()
            .stage_reached(tx, LatencyStage::GlobalOrdering, now);
        ctx.send(
            NodeId::Client(self.config.client_actor_of(tx.client)),
            NetMessage::ClientReply {
                tx,
                status: ReplyStatus::from(outcome),
                replica: self.me,
            },
        );
    }

    // ------------------------------------------------------------------
    // Delivery, global ordering and execution
    // ------------------------------------------------------------------

    fn on_block_delivered(
        &mut self,
        instance: InstanceId,
        block: SharedBlock,
        ctx: &mut Context<'_, NetMessage>,
    ) {
        self.delivered_blocks += 1;
        ctx.stats().block_delivered();
        self.progress.record_progress(instance, ctx.now());
        self.rank.observe_block(&block);

        if self.is_ordering_instance(instance) {
            // DQBFT: the delivered block carries ordering decisions.
            let ids = block.header.ordered_ids.clone();
            for id in ids {
                let confirmed = self.policy.on_order_decision(id);
                self.handle_globally_confirmed(confirmed, ctx);
            }
            return;
        }

        // Partition-module bookkeeping: these transactions are no longer
        // pending in this instance's bucket.
        for tx in &block.txs {
            self.buckets[instance.as_usize()].mark_delivered(tx.id);
            let now = ctx.now();
            ctx.stats()
                .stage_reached(tx.id, LatencyStage::PartialOrdering, now);
        }
        if !self.buckets[instance.as_usize()].has_pending() {
            self.progress.clear_expectation(instance);
        }

        // Ordering module: partial log + global ordering policy. Both paths
        // share the delivered block's handle — no payload copies.
        self.plogs.get_mut(instance).insert(Arc::clone(&block));
        if self.protocol == ProtocolKind::Dqbft {
            let ordering_leader = self.config.num_instances % self.config.num_replicas;
            if self.me == ReplicaId::new(ordering_leader) {
                self.pending_order_decisions.push(block.id());
            }
        }
        let confirmed = self.policy.on_deliver(block);
        self.handle_globally_confirmed(confirmed, ctx);

        // Execution module: advance the partial-log fast path, then any glog
        // entries that were waiting for those escrows.
        self.process_partial_logs(ctx);
        self.process_global_log(ctx);

        // DQBFT: the ordering leader proposes decisions as soon as it has
        // some (batched opportunistically; the batch timer also retries).
        self.try_propose_ordering(ctx);

        // Retained-memory accounting: the window between checkpoints is
        // exactly when retention peaks, so sample after every delivery.
        self.sample_retention();
    }

    /// Drain every partial-log block whose referenced state `b.S` is covered
    /// by what we have already executed (paper §V-C) and run the payment
    /// fast path over the batch.
    ///
    /// The drain (`PartialLogs::drain_ready`) yields blocks in the exact
    /// order the old per-block walk consumed them, so both execution modes
    /// below produce the same confirmation trace:
    ///
    /// * the single-threaded reference path calls
    ///   [`Executor::process_plog_tx`] per transaction,
    /// * the sharded path (`ExecutionMode::ShardedDemotion`) hands the
    ///   batch to [`Executor::process_plog_schedule`], which executes
    ///   independent instances' shard-local payments on the
    ///   [`parallel_for_mut`] pool and merges outcomes deterministically, and
    /// * the optimistic path (`ExecutionMode::OptimisticStm`) hands it to
    ///   [`Executor::process_plog_schedule_stm`], which speculates every
    ///   occurrence, validates in schedule order, and folds validated
    ///   write-sets into the shards via the incremental accumulators.
    ///
    /// Both parallel modes route straight through the serial reference walk
    /// when the effective pool width is 1 or the batch is below
    /// `parallel_handoff_min_ops` — at width 1 the scheduler machinery is
    /// pure overhead over the identical serial result.
    fn process_partial_logs(&mut self, ctx: &mut Context<'_, NetMessage>) {
        let schedule = self.plogs.drain_ready(&mut self.executed_state);
        if schedule.is_empty() || self.protocol != ProtocolKind::Orthrus {
            return;
        }
        // Fast path: escrow + commit payments straight from the partial logs
        // (Algorithm 1 lines 20–30).
        let assign = self.partitioner;
        // Below the handoff threshold (or on a width-1 pool) the serial
        // reference walk is strictly faster and bit-identical, so every mode
        // collapses to it.
        let ops: usize = schedule.iter().map(|(_, block)| block.txs.len()).sum();
        let threads = if ops < self.config.parallel_handoff_min_ops {
            1
        } else {
            self.pool_threads
        };
        let mode = if threads <= 1 {
            ExecutionMode::Serial
        } else {
            self.config.execution_mode
        };
        let confirmations: Vec<(TxId, Option<TxOutcome>)> = match mode {
            ExecutionMode::ShardedDemotion => {
                self.executor
                    .process_plog_schedule(&schedule, &|key| assign.assign(key), |jobs| {
                        crate::runner::parallel_for_mut(jobs, threads, |job| job.run());
                    })
            }
            ExecutionMode::OptimisticStm => self.executor.process_plog_schedule_stm(
                &schedule,
                &|key| assign.assign(key),
                threads,
            ),
            ExecutionMode::Serial => {
                let mut outcomes = Vec::new();
                for (instance, block) in &schedule {
                    for tx in &block.txs {
                        outcomes.push((
                            tx.id,
                            self.executor
                                .process_plog_tx(tx, *instance, &|key| assign.assign(key)),
                        ));
                    }
                }
                outcomes
            }
        };
        for (tx, outcome) in confirmations {
            if let Some(outcome) = outcome {
                self.confirm_tx(tx, outcome, ctx);
            }
        }
    }

    /// Append globally confirmed blocks to the glog and execute whatever
    /// prefix of the glog is ready according to the protocol's execution
    /// rule.
    fn handle_globally_confirmed(
        &mut self,
        confirmed: Vec<SharedBlock>,
        ctx: &mut Context<'_, NetMessage>,
    ) {
        let now = ctx.now();
        for block in confirmed {
            // `or_insert` (not overwrite): duplicate global confirmations of
            // the same block must not reset the wait clock.
            self.glog_appended_at.entry(block.id()).or_insert(now);
            self.glog.append(block);
        }
        self.process_global_log(ctx);
    }

    /// Execute globally ordered blocks from the glog cursor onwards.
    ///
    /// For Orthrus the execution of a glog entry "must strictly align with
    /// the global state at its designated position" (§V-C): we only execute a
    /// glog block once its own partial-log processing (which performs the
    /// escrow operations of its transactions) has completed, so that
    /// `allEscrowed` reflects every leg that was going to be escrowed. The
    /// baselines execute unconditionally in glog order, which is already
    /// deterministic for them because all their effects happen here.
    fn process_global_log(&mut self, ctx: &mut Context<'_, NetMessage>) {
        let assign = self.partitioner;
        loop {
            let ready = match self.glog.first_pending() {
                Some(block) => {
                    self.protocol != ProtocolKind::Orthrus
                        || self
                            .executed_state
                            .get(block.header.instance)
                            .is_some_and(|sn| sn >= block.header.sn)
                }
                None => false,
            };
            if !ready {
                break;
            }
            // orthrus: allow(panic-path): the ready check above just matched Some on first_pending; the glog is not touched in between.
            let block = self.glog.pop_pending().expect("first_pending was Some");
            if let Some(appended) = self.glog_appended_at.remove(&block.id()) {
                let wait = ctx.now() - appended;
                ctx.stats().glog_wait(wait);
            }
            for tx in &block.txs {
                let outcome = match self.protocol {
                    ProtocolKind::Orthrus => {
                        // Only contract transactions still need the global
                        // log; payments were confirmed on the fast path.
                        self.executor.process_glog_tx(tx, &|key| assign.assign(key))
                    }
                    _ => Some(self.executor.process_sequential_tx(tx)),
                };
                if let Some(outcome) = outcome {
                    self.confirm_tx(tx.id, outcome, ctx);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Proposal paths
    // ------------------------------------------------------------------

    /// Try to propose in every data instance this replica currently leads.
    fn try_propose_all(&mut self, ctx: &mut Context<'_, NetMessage>) {
        for i in 0..self.config.num_instances {
            self.try_propose_data(InstanceId::new(i), ctx);
        }
        self.try_propose_ordering(ctx);
    }

    fn try_propose_data(&mut self, instance: InstanceId, ctx: &mut Context<'_, NetMessage>) {
        let idx = instance.as_usize();
        if !self.instances[idx].is_leader() {
            return;
        }
        let sn = self.instances[idx].next_propose_sn();
        let delivered = self.instances[idx]
            .last_delivered()
            .map_or(0, |s| s.value() + 1);
        if sn.value() >= delivered + self.config.max_inflight_blocks {
            return;
        }
        let executor = &self.executor;
        let txs =
            self.buckets[idx].pull(self.config.batch_size, |tx| executor.speculative_valid(tx));
        // When the bucket is empty but other instances have delivered blocks
        // that cannot be globally confirmed yet (a gap in the pre-determined
        // interleaving, or a stalled Ladon bar), fill our slot with a no-op
        // block so the global log keeps moving (ISS's no-op mechanism).
        let needs_noop = txs.is_empty() && self.policy.pending() > 0;
        if txs.is_empty() && !needs_noop {
            return;
        }
        let params = BlockParams {
            instance,
            sn,
            epoch: Epoch::new(sn.value() / self.config.epoch_length.max(1)),
            view: self.instances[idx].current_view(),
            proposer: self.me,
            rank: self.rank.next_rank(),
            state: self.delivered_state(),
        };
        let block = Arc::new(if txs.is_empty() {
            Block::no_op(params)
        } else {
            for tx in &txs {
                let now = ctx.now();
                ctx.stats()
                    .stage_reached(tx.id, LatencyStage::Preprocess, now);
            }
            // The batch is assembled from the bucket's shared handles; the
            // only allocation here is the block itself.
            Block::from_shared(params, txs)
        });
        let actions = self.instances[idx].propose(block, ctx.now());
        self.progress.record_expectation(instance, ctx.now());
        self.apply_sb_actions(instance, actions, ctx);
    }

    fn try_propose_ordering(&mut self, ctx: &mut Context<'_, NetMessage>) {
        if self.protocol != ProtocolKind::Dqbft || self.pending_order_decisions.is_empty() {
            return;
        }
        let instance = self.ordering_instance();
        let idx = instance.as_usize();
        if !self.instances[idx].is_leader() {
            return;
        }
        let sn = self.instances[idx].next_propose_sn();
        let delivered = self.instances[idx]
            .last_delivered()
            .map_or(0, |s| s.value() + 1);
        if sn.value() >= delivered + self.config.max_inflight_blocks {
            return;
        }
        let ids = std::mem::take(&mut self.pending_order_decisions);
        let params = BlockParams {
            instance,
            sn,
            epoch: Epoch::new(sn.value() / self.config.epoch_length.max(1)),
            view: self.instances[idx].current_view(),
            proposer: self.me,
            rank: self.rank.next_rank(),
            state: self.delivered_state(),
        };
        let block = Arc::new(Block::ordering(params, ids));
        let actions = self.instances[idx].propose(block, ctx.now());
        self.apply_sb_actions(instance, actions, ctx);
    }

    // ------------------------------------------------------------------
    // Inbound handlers
    // ------------------------------------------------------------------

    fn on_client_request(&mut self, from: NodeId, tx: SharedTx, ctx: &mut Context<'_, NetMessage>) {
        if tx.validate().is_err() {
            return;
        }
        if self.replied.contains(&tx.id) {
            return;
        }
        let now = ctx.now();
        ctx.stats().stage_reached(tx.id, LatencyStage::Send, now);
        let forward = !from.is_replica();
        for instance in self.partitioner.instances_of(&tx) {
            if self.buckets[instance.as_usize()].push(Arc::clone(&tx)) {
                self.progress.record_expectation(instance, ctx.now());
            }
            // Clients only contact f + 1 replicas (censorship resistance,
            // §V-B); whichever replica receives the request relays it to the
            // instance's current leader so it can be proposed promptly.
            // Requests relayed by other replicas are not forwarded again,
            // which keeps the relay loop-free.
            if forward {
                let leader = self.instances[instance.as_usize()].current_leader();
                if leader != self.me {
                    ctx.send(
                        NodeId::Replica(leader),
                        NetMessage::ClientRequest {
                            tx: Arc::clone(&tx),
                        },
                    );
                }
            }
        }
    }

    fn on_consensus(
        &mut self,
        from: ReplicaId,
        instance: InstanceId,
        inner: orthrus_sb::SbMessage,
        ctx: &mut Context<'_, NetMessage>,
    ) {
        let idx = instance.as_usize();
        if idx >= self.instances.len() {
            return;
        }
        if self.selfish {
            // Undetectable fault: participate only in the instance we lead.
            let leads_it = self.instances[idx].current_leader() == self.me;
            if !leads_it {
                return;
            }
        }
        let actions = self.instances[idx].handle_message(from, inner, ctx.now());
        self.apply_sb_actions(instance, actions, ctx);
    }

    fn on_failure_detector_sweep(&mut self, ctx: &mut Context<'_, NetMessage>) {
        let now = ctx.now();
        for i in 0..self.instances.len() {
            let instance = InstanceId::new(i as u32);
            if self.instances[i].in_view_change() {
                continue;
            }
            if self.progress.should_suspect(instance, now) {
                let actions = self.instances[i].on_timeout(now);
                // Suspicion handled; reset the expectation clock so we do not
                // immediately re-suspect the new leader.
                self.progress.record_progress(instance, now);
                self.apply_sb_actions(instance, actions, ctx);
            }
        }
    }

    // ------------------------------------------------------------------
    // Crash recovery: state transfer
    // ------------------------------------------------------------------

    /// Monotone progress mark: total blocks delivered across instances plus
    /// global-log length. State-transfer installs are fast-forward only with
    /// respect to this mark.
    fn progress_mark(&self) -> u64 {
        self.instances
            .iter()
            .map(PbftInstance::delivered_count)
            .sum::<u64>()
            + self.glog.len() as u64
    }

    /// Package this replica's state for a recovering peer: the stable
    /// checkpoint certificates, a clone-on-snapshot of the sharded execution
    /// state, and the consensus/ordering catch-up. Everything above the
    /// checkpoint low-water marks is still retained locally (that is exactly
    /// what the retention policy keeps), so the transfer lets the peer
    /// resume mid-run, not just at the checkpoint.
    fn build_state_transfer(&self) -> StateTransfer {
        let checkpoint: Vec<StableCheckpoint> =
            self.stable_certs.iter().flatten().cloned().collect();
        let shards = self.executor.clone();
        let wire_bytes = 1_024
            + shards.store().len() as u64 * 48
            + checkpoint.len() as u64 * 128
            + self.plogs.retained_bytes()
            + self.glog.retained_bytes();
        StateTransfer {
            checkpoint,
            shards,
            catch_up: CatchUp {
                instances: self.instances.clone(),
                plogs: self.plogs.clone(),
                glog: self.glog.clone(),
                executed_state: self.executed_state.clone(),
                stable: self.stable.clone(),
                stable_certs: self.stable_certs.clone(),
                policy: self.policy.clone(),
                rank: self.rank.clone(),
                buckets: self.buckets.clone(),
                replied: self.replied.clone(),
                pending_order_decisions: self.pending_order_decisions.clone(),
                delivered_blocks: self.delivered_blocks,
            },
            mark: self.progress_mark(),
            wire_bytes,
        }
    }

    fn on_state_request(
        &mut self,
        from: ReplicaId,
        want_state: bool,
        ctx: &mut Context<'_, NetMessage>,
    ) {
        // A replica that is itself mid-recovery has nothing trustworthy to
        // offer; the requester's other peers will answer.
        if self.recovering || from == self.me {
            return;
        }
        if want_state {
            let state = Arc::new(self.build_state_transfer());
            ctx.send(NodeId::Replica(from), NetMessage::StateTransfer { state });
        }
        // The requester may lead instances whose pending transactions only
        // exist in *our* buckets (relays sent while it was down were
        // dropped). Re-relay them, exactly like the view-change path does
        // for a new leader; bucket dedup makes repeats across sync rounds
        // harmless.
        for idx in 0..self.buckets.len() {
            if self.instances[idx].current_leader() != from {
                continue;
            }
            let pending: Vec<SharedTx> = self.buckets[idx].pull(usize::MAX, |_| true);
            for tx in pending {
                ctx.send(
                    NodeId::Replica(from),
                    NetMessage::ClientRequest {
                        tx: Arc::clone(&tx),
                    },
                );
                self.buckets[idx].push(tx);
            }
        }
    }

    /// Install a state transfer. Installs are fast-forward only: the first
    /// transfer after a restart always installs (the local state is stale by
    /// definition); later ones install only if the sender is ahead. A
    /// transfer that is *not* ahead means we have caught up with that peer —
    /// the sync round timer uses that to decide when to stop asking.
    ///
    /// An *advancing* transfer installs even after the sync loop has stopped
    /// (a large snapshot's serialization can outlive a short round delay):
    /// transfers only ever arrive in response to our own requests, the
    /// advancement gate makes late installs monotone, and installing one
    /// re-opens the loop so convergence is re-verified.
    fn on_state_transfer(&mut self, state: &StateTransfer, ctx: &mut Context<'_, NetMessage>) {
        if !self.recovering && state.mark <= self.progress_mark() {
            return;
        }
        // Adopt the peer's observed state wholesale, rebinding the PBFT
        // instances to our own identity.
        self.instances = state.catch_up.instances.clone();
        for instance in &mut self.instances {
            instance.rebind(self.me);
        }
        self.executor = state.shards.clone();
        self.plogs = state.catch_up.plogs.clone();
        self.glog = state.catch_up.glog.clone();
        self.executed_state = state.catch_up.executed_state.clone();
        self.stable = state.catch_up.stable.clone();
        self.stable_certs = state.catch_up.stable_certs.clone();
        self.policy = state.catch_up.policy.clone();
        self.rank = state.catch_up.rank.clone();
        // Adopt the peer's buckets, then merge back anything that reached
        // *us* between restart and install (direct client traffic and
        // peer re-relays) — the adopted bucket's delivered-set dedups
        // whatever the peer already saw ordered.
        let old_buckets = std::mem::replace(&mut self.buckets, state.catch_up.buckets.clone());
        for (idx, mut bucket) in old_buckets.into_iter().enumerate() {
            for tx in bucket.pull(usize::MAX, |_| true) {
                self.buckets[idx].push(tx);
            }
        }
        self.replied = state.catch_up.replied.clone();
        self.pending_order_decisions = state.catch_up.pending_order_decisions.clone();
        self.delivered_blocks = state.catch_up.delivered_blocks;
        let now = ctx.now();
        self.refresh_anchor(state.checkpoint.clone(), now);
        self.progress = ProgressTracker::new(self.config.view_change_timeout);
        self.sync_advanced = true;
        if !self.syncing {
            // The loop had already concluded; this late install re-opens it
            // so the next round can re-verify convergence.
            self.syncing = true;
            ctx.set_timer(self.sync_round_delay(), self.tag(TIMER_RECOVERY_SYNC));
        }
        if self.recovering {
            self.recovering = false;
            self.recovered_at = Some(now);
            // Restart the protocol timers under the current restart epoch
            // (the pre-crash timers are dead: their epoch no longer matches).
            self.arm_protocol_timers(ctx);
        }
        self.sample_retention();
    }

    /// Delay between recovery sync rounds: long enough for a round trip to
    /// the farthest peer plus its (large) response, short enough to keep
    /// recovery latency in the sub-second-per-round range.
    fn sync_round_delay(&self) -> Duration {
        Duration::from_micros(
            (self.config.view_change_timeout.as_micros() / 8)
                .max(4 * self.config.batch_timeout.as_micros())
                .max(200_000),
        )
    }

    fn tag(&self, base: u64) -> u64 {
        self.timer_epoch * TIMER_EPOCH_STRIDE + base
    }

    fn arm_protocol_timers(&mut self, ctx: &mut Context<'_, NetMessage>) {
        ctx.set_timer(self.config.batch_timeout, self.tag(TIMER_BATCH));
        let sweep =
            Duration::from_micros((self.config.view_change_timeout.as_micros() / 4).max(1_000));
        ctx.set_timer(sweep, self.tag(TIMER_FAILURE_DETECTOR));
    }

    /// The `f + 1` peers a sync round asks for state, rotating by round so
    /// crashed or lagging peers cannot starve recovery. Serving a transfer
    /// deep-clones the peer's whole state, so asking everyone every round
    /// (n − 1 clones of which at most one installs) would waste both peer
    /// CPU and simulated wire; `f + 1` guarantees at least one honest
    /// responder per round under the fault budget.
    fn sync_targets(&self) -> Vec<NodeId> {
        let n = self.config.num_replicas;
        let start = (u64::from(self.me.value()) + 1 + self.sync_round) % u64::from(n);
        (0..u64::from(n))
            .map(|i| ReplicaId::new(((start + i) % u64::from(n)) as u32))
            .filter(|r| *r != self.me)
            .take(self.config.client_quorum() as usize)
            .map(NodeId::Replica)
            .collect()
    }

    /// One recovery sync round: (re-)request state and re-arm the round
    /// timer. Rounds keep firing until a full round passes in which no
    /// transfer advanced us — at that point every live peer we heard from is
    /// at our position, all later traffic reaches us live, and the loop
    /// stops. (A transfer still in flight when the loop stops installs
    /// anyway if it advances us, and re-opens the loop — see
    /// [`ReplicaNode::on_state_transfer`].)
    fn run_sync_round(&mut self, ctx: &mut Context<'_, NetMessage>) {
        if !self.syncing {
            return;
        }
        if !self.recovering && !self.sync_advanced {
            self.syncing = false;
            return;
        }
        self.sync_advanced = false;
        let targets = self.sync_targets();
        if self.sync_round == 0 {
            // First round only: announce the restart to the peers *not*
            // asked for state, so every peer re-relays the pending
            // transactions of instances we lead (their relays during the
            // crash window were dropped). Re-relays received from here on
            // survive the install (bucket merge), so once is enough.
            let others: Vec<NodeId> = self
                .all_replicas()
                .into_iter()
                .filter(|node| !targets.contains(node))
                .collect();
            ctx.multicast(
                others,
                NetMessage::StateRequest {
                    replica: self.me,
                    want_state: false,
                },
            );
        }
        self.sync_round += 1;
        ctx.multicast(
            targets,
            NetMessage::StateRequest {
                replica: self.me,
                want_state: true,
            },
        );
        let delay = self.sync_round_delay();
        ctx.set_timer(delay, self.tag(TIMER_RECOVERY_SYNC));
    }
}

impl Actor<NetMessage> for ReplicaNode {
    fn on_start(&mut self, ctx: &mut Context<'_, NetMessage>) {
        self.arm_protocol_timers(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: NetMessage, ctx: &mut Context<'_, NetMessage>) {
        match msg {
            NetMessage::ClientRequest { tx } => {
                // Accepted even mid-recovery: the bucket contents survive the
                // state-transfer install (merged back), so client traffic
                // arriving in the install window is not lost.
                self.on_client_request(from, tx, ctx);
            }
            NetMessage::Consensus { instance, inner } => {
                if self.recovering {
                    return;
                }
                if let Some(replica) = from.as_replica() {
                    self.on_consensus(replica, instance, inner, ctx);
                }
            }
            NetMessage::StateRequest {
                replica,
                want_state,
            } => self.on_state_request(replica, want_state, ctx),
            NetMessage::StateTransfer { state } => self.on_state_transfer(&state, ctx),
            NetMessage::ClientReply { .. } => {}
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, NetMessage>) {
        // Timers armed before a crash carry a stale epoch: ignore them so
        // they cannot fire into post-recovery state (or double-schedule the
        // protocol timers).
        if tag / TIMER_EPOCH_STRIDE != self.timer_epoch {
            return;
        }
        match tag % TIMER_EPOCH_STRIDE {
            TIMER_BATCH => {
                self.try_propose_all(ctx);
                ctx.set_timer(self.config.batch_timeout, self.tag(TIMER_BATCH));
            }
            TIMER_FAILURE_DETECTOR => {
                self.on_failure_detector_sweep(ctx);
                let sweep = Duration::from_micros(
                    (self.config.view_change_timeout.as_micros() / 4).max(1_000),
                );
                ctx.set_timer(sweep, self.tag(TIMER_FAILURE_DETECTOR));
            }
            TIMER_RECOVERY_SYNC => self.run_sync_round(ctx),
            _ => {}
        }
    }

    /// Crash-recover restart: forget that any timer chain exists (stale
    /// epochs are ignored on arrival), mark the local state stale and start
    /// the state-transfer sync loop.
    fn on_recover(&mut self, ctx: &mut Context<'_, NetMessage>) {
        self.timer_epoch += 1;
        self.recovering = true;
        self.syncing = true;
        self.sync_advanced = false;
        self.run_sync_round(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genesis() -> ObjectStore {
        let mut store = ObjectStore::new();
        for k in 0..16u64 {
            store.create_account(orthrus_types::ObjectKey::new(k), 1_000);
        }
        store
    }

    #[test]
    fn replica_construction_per_protocol() {
        for protocol in ProtocolKind::ALL {
            let config = ProtocolConfig::for_replicas(4);
            let node = ReplicaNode::new(ReplicaId::new(0), protocol, config.clone(), genesis());
            assert_eq!(node.protocol(), protocol);
            let expected_instances = if protocol == ProtocolKind::Dqbft {
                5
            } else {
                4
            };
            assert_eq!(node.instances.len(), expected_instances);
            assert_eq!(node.buckets.len(), 4);
            assert_eq!(node.confirmed_transactions(), 0);
            assert_eq!(node.delivered_blocks(), 0);
        }
    }

    #[test]
    fn ordering_instance_id_is_one_past_data_instances() {
        let config = ProtocolConfig::for_replicas(4);
        let node = ReplicaNode::new(ReplicaId::new(1), ProtocolKind::Dqbft, config, genesis());
        assert_eq!(node.ordering_instance(), InstanceId::new(4));
        assert!(node.is_ordering_instance(InstanceId::new(4)));
        assert!(!node.is_ordering_instance(InstanceId::new(0)));
    }

    #[test]
    fn delivered_state_tracks_instances() {
        let config = ProtocolConfig::for_replicas(4);
        let node = ReplicaNode::new(ReplicaId::new(0), ProtocolKind::Orthrus, config, genesis());
        let s = node.delivered_state();
        assert_eq!(s.num_instances(), 4);
        assert_eq!(s.total_delivered_blocks(), 0);
    }

    #[test]
    fn all_replicas_excludes_self() {
        let config = ProtocolConfig::for_replicas(4);
        let node = ReplicaNode::new(ReplicaId::new(2), ProtocolKind::Iss, config, genesis());
        let peers = node.all_replicas();
        assert_eq!(peers.len(), 3);
        assert!(!peers.contains(&NodeId::replica(2)));
    }

    #[test]
    fn fresh_replica_has_empty_checkpoint_and_retention_state() {
        let config = ProtocolConfig::for_replicas(4);
        let node = ReplicaNode::new(ReplicaId::new(0), ProtocolKind::Orthrus, config, genesis());
        assert!(node.checkpoint_anchor().is_none());
        assert_eq!(node.stable_frontier().total_delivered_blocks(), 0);
        assert_eq!(node.retained_log_entries(), 0);
        assert_eq!(node.retained_log_bytes(), 0);
        assert_eq!(node.peak_retained_entries(), 0);
        assert_eq!(node.peak_retained_bytes(), 0);
        assert!(node.recovered_at().is_none());
        assert_eq!(node.progress_mark(), 0);
    }

    #[test]
    fn state_transfer_snapshots_the_executor_and_mark() {
        let config = ProtocolConfig::for_replicas(4);
        let node = ReplicaNode::new(ReplicaId::new(1), ProtocolKind::Orthrus, config, genesis());
        let transfer = node.build_state_transfer();
        assert_eq!(transfer.progress_mark(), 0);
        assert!(transfer.checkpoint.is_empty());
        assert_eq!(
            transfer.shards.state_digest(),
            node.executor().state_digest()
        );
        assert_eq!(transfer.catch_up.instances.len(), 4);
        assert!(transfer.wire_bytes() >= 1_024);
        // Identity equality: a shared handle equals itself, two builds do
        // not.
        let again = node.build_state_transfer();
        assert_ne!(transfer, again);
        let arc = Arc::new(transfer);
        assert_eq!(*arc, *Arc::clone(&arc));
    }

    #[test]
    fn timer_tags_carry_the_restart_epoch() {
        let config = ProtocolConfig::for_replicas(4);
        let mut node =
            ReplicaNode::new(ReplicaId::new(0), ProtocolKind::Orthrus, config, genesis());
        let t0 = node.tag(TIMER_BATCH);
        assert_eq!(t0 % TIMER_EPOCH_STRIDE, TIMER_BATCH);
        assert_eq!(t0 / TIMER_EPOCH_STRIDE, 0);
        node.timer_epoch += 1;
        let t1 = node.tag(TIMER_BATCH);
        assert_eq!(t1 % TIMER_EPOCH_STRIDE, TIMER_BATCH);
        assert_eq!(t1 / TIMER_EPOCH_STRIDE, 1);
        assert_ne!(t0, t1, "stale-epoch timers must not collide");
    }
}
