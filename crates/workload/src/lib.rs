//! # orthrus-workload
//!
//! Synthetic Ethereum-like workload generation.
//!
//! The paper's evaluation replays a real Ethereum trace (≈200,000
//! transactions from 18,000 active accounts, 46% simple payments). This crate
//! produces a synthetic equivalent with the same statistical shape (see
//! `DESIGN.md` for the substitution rationale):
//!
//! * [`zipf`] — the skewed account-popularity sampler;
//! * [`generator`] — the [`generator::Workload`] builder: genesis balances,
//!   shared contract objects, and a deterministic transaction trace with a
//!   configurable payment share (the knob swept by the paper's Fig. 5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod zipf;

pub use generator::{Workload, WorkloadConfig};
pub use zipf::Zipf;
