//! Synthetic Ethereum-like workload generation.
//!
//! The paper's evaluation (§VII-A) replays ~200,000 real Ethereum
//! transactions drawn from 18,000 active accounts, of which 46% are simple
//! payments and the rest are contract interactions. The real trace is not
//! redistributable, so this module generates a synthetic workload that
//! preserves the characteristics the protocols are sensitive to:
//!
//! * account population size and Zipf-skewed sender/receiver popularity;
//! * the payment/contract mix (configurable, 46% payments by default);
//! * a small fraction of multi-payer payments (which exercise cross-instance
//!   escrow atomicity);
//! * contract transactions touching a bounded set of shared objects;
//! * a fixed payload size per transaction (500 bytes by default).

use crate::zipf::Zipf;
use orthrus_types::rng::{Rng, StdRng};
use orthrus_types::transaction::DEFAULT_PAYLOAD_BYTES;
use orthrus_types::{
    Amount, ClientId, ObjectKey, ObjectOp, OrthrusError, SharedTx, Transaction, TxId, TxKind,
};

/// Configuration of the synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of client accounts (the paper's trace has 18,000 active users).
    pub num_accounts: u64,
    /// Number of transactions to generate (the paper replays 200,000).
    pub num_transactions: usize,
    /// Fraction of payment transactions (0.0–1.0); the paper's trace has 46%.
    pub payment_share: f64,
    /// Fraction of *payment* transactions that have two payers (exercising
    /// cross-instance atomicity).
    pub multi_payer_share: f64,
    /// Number of distinct shared (contract) objects.
    pub num_shared_objects: u64,
    /// Zipf exponent of account popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Initial balance of every account.
    pub initial_balance: Amount,
    /// Largest single transfer amount.
    pub max_transfer: Amount,
    /// Payload bytes per transaction (the paper uses 500).
    pub payload_bytes: u32,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            num_accounts: 18_000,
            num_transactions: 200_000,
            payment_share: 0.46,
            multi_payer_share: 0.05,
            num_shared_objects: 512,
            zipf_exponent: 0.8,
            initial_balance: 1_000_000,
            max_transfer: 100,
            payload_bytes: DEFAULT_PAYLOAD_BYTES,
            seed: 42,
        }
    }
}

impl WorkloadConfig {
    /// A small configuration for unit tests and quick examples.
    pub fn small() -> Self {
        Self {
            num_accounts: 64,
            num_transactions: 512,
            num_shared_objects: 8,
            ..Self::default()
        }
    }

    /// A hot-account workload: account popularity follows a steep Zipf law
    /// (`zipf_exponent = 1.4 ≥ 1.2`), concentrating most debits on a handful
    /// of accounts and therefore most execution load on the one state shard
    /// and SB instance those accounts route to. Used by the shard-imbalance
    /// sweeps and the executor bench's hot-account ablation.
    pub fn hot_accounts() -> Self {
        Self {
            zipf_exponent: 1.4,
            ..Self::default()
        }
    }

    /// Override the Zipf exponent of account popularity.
    pub fn with_zipf_exponent(mut self, exponent: f64) -> Self {
        self.zipf_exponent = exponent;
        self
    }

    /// Override the number of transactions.
    pub fn with_transactions(mut self, n: usize) -> Self {
        self.num_transactions = n;
        self
    }

    /// Override the payment share (Fig. 5's sweep knob).
    pub fn with_payment_share(mut self, share: f64) -> Self {
        self.payment_share = share.clamp(0.0, 1.0);
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Key space offset where shared (contract) objects live, far away from
    /// account keys.
    pub fn shared_object_key(&self, index: u64) -> ObjectKey {
        ObjectKey::new((1 << 48) + index)
    }

    /// Check the configuration for values the generator cannot honour.
    ///
    /// The generator itself clamps some knobs (shares) and loops around
    /// others, so a bad configuration used to *silently* produce a workload
    /// that did not match what was asked for. The scenario driver calls this
    /// up front and refuses to run instead.
    pub fn validate(&self) -> Result<(), OrthrusError> {
        if self.num_accounts < 2 {
            return Err(OrthrusError::Config(format!(
                "workload needs at least 2 accounts (payments have distinct payer and payee), \
                 got {}",
                self.num_accounts
            )));
        }
        if self.num_transactions == 0 {
            return Err(OrthrusError::Config(
                "workload must contain at least one transaction".into(),
            ));
        }
        for (name, share) in [
            ("payment_share", self.payment_share),
            ("multi_payer_share", self.multi_payer_share),
        ] {
            if !share.is_finite() || !(0.0..=1.0).contains(&share) {
                return Err(OrthrusError::Config(format!(
                    "{name} must be within [0, 1], got {share}"
                )));
            }
        }
        if !self.zipf_exponent.is_finite() || self.zipf_exponent < 0.0 {
            return Err(OrthrusError::Config(format!(
                "zipf_exponent must be a finite non-negative number, got {}",
                self.zipf_exponent
            )));
        }
        if self.max_transfer == 0 {
            return Err(OrthrusError::Config(
                "max_transfer must be at least 1".into(),
            ));
        }
        if self.payment_share < 1.0 && self.num_shared_objects == 0 {
            return Err(OrthrusError::Config(format!(
                "payment_share {} admits contract transactions, which need at least one shared \
                 object (num_shared_objects = 0)",
                self.payment_share
            )));
        }
        Ok(())
    }
}

/// A generated workload: genesis state plus the transaction trace.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The configuration that produced this workload.
    pub config: WorkloadConfig,
    /// Initial account balances (account key, balance).
    pub genesis_accounts: Vec<(ObjectKey, Amount)>,
    /// Shared objects that exist at genesis (key, initial value).
    pub genesis_shared: Vec<(ObjectKey, i64)>,
    /// The transaction trace, in submission order. Transactions are born as
    /// shared handles: the runner, the client actors and every replica bucket
    /// reference the same allocation.
    pub transactions: Vec<SharedTx>,
}

impl Workload {
    /// Generate the workload described by `config`.
    pub fn generate(config: WorkloadConfig) -> Self {
        // orthrus: allow(ambient-rng): seeded directly from the scenario's workload seed — the sanctioned provenance.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let popularity = Zipf::new(config.num_accounts as usize, config.zipf_exponent);

        let genesis_accounts: Vec<(ObjectKey, Amount)> = (0..config.num_accounts)
            .map(|a| {
                (
                    ObjectKey::account_of(ClientId::new(a)),
                    config.initial_balance,
                )
            })
            .collect();
        let genesis_shared: Vec<(ObjectKey, i64)> = (0..config.num_shared_objects)
            .map(|i| (config.shared_object_key(i), 0))
            .collect();

        let mut transactions = Vec::with_capacity(config.num_transactions);
        let mut seq_per_client = vec![0u64; config.num_accounts as usize];
        for _ in 0..config.num_transactions {
            let payer_idx = popularity.sample(&mut rng) as u64;
            let payer = ClientId::new(payer_idx);
            let seq = seq_per_client[payer_idx as usize];
            seq_per_client[payer_idx as usize] += 1;
            let id = TxId::new(payer, seq);
            let amount = rng.gen_range(1..=config.max_transfer);
            let is_payment = rng.gen_bool(config.payment_share.clamp(0.0, 1.0));

            let tx = if is_payment {
                let payee = Self::pick_other(&popularity, &mut rng, payer_idx, config.num_accounts);
                if rng.gen_bool(config.multi_payer_share.clamp(0.0, 1.0)) {
                    let second =
                        Self::pick_other(&popularity, &mut rng, payer_idx, config.num_accounts);
                    let second_amount = rng.gen_range(1..=config.max_transfer);
                    Transaction::multi_payment(
                        id,
                        &[(payer, amount), (ClientId::new(second), second_amount)],
                        &[(ClientId::new(payee), amount + second_amount)],
                    )
                } else {
                    Transaction::payment(id, payer, ClientId::new(payee), amount)
                }
            } else {
                // Contract call: the payer (and sometimes a co-signer) pays a
                // fee and the contract updates one shared object.
                let object =
                    config.shared_object_key(rng.gen_range(0..config.num_shared_objects.max(1)));
                let op = if rng.gen_bool(0.5) {
                    ObjectOp::set_shared(object, rng.gen_range(0..1_000))
                } else {
                    ObjectOp::add_shared(object, rng.gen_range(-50..50))
                };
                if rng.gen_bool(0.3) {
                    let second =
                        Self::pick_other(&popularity, &mut rng, payer_idx, config.num_accounts);
                    Transaction::contract(
                        id,
                        &[(payer, amount), (ClientId::new(second), amount)],
                        vec![op],
                    )
                } else {
                    Transaction::contract(id, &[(payer, amount)], vec![op])
                }
            };
            transactions.push(tx.with_payload_bytes(config.payload_bytes).into_shared());
        }

        Self {
            config,
            genesis_accounts,
            genesis_shared,
            transactions,
        }
    }

    fn pick_other(zipf: &Zipf, rng: &mut StdRng, exclude: u64, n: u64) -> u64 {
        debug_assert!(n > 1, "need at least two accounts");
        loop {
            let candidate = zipf.sample(rng) as u64;
            if candidate != exclude {
                return candidate;
            }
            // Fall back to uniform to avoid pathological loops on tiny,
            // extremely skewed populations.
            let candidate = rng.gen_range(0..n);
            if candidate != exclude {
                return candidate;
            }
        }
    }

    /// Number of transactions in the trace.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Fraction of payment transactions actually generated.
    pub fn payment_fraction(&self) -> f64 {
        if self.transactions.is_empty() {
            return 0.0;
        }
        let payments = self
            .transactions
            .iter()
            .filter(|tx| tx.kind == TxKind::Payment)
            .count();
        payments as f64 / self.transactions.len() as f64
    }

    /// Populate an executor's store with the genesis state.
    pub fn install_genesis(&self, store: &mut orthrus_execution::ObjectStore) {
        for (key, balance) in &self.genesis_accounts {
            store.create_account(*key, *balance);
        }
        for (key, value) in &self.genesis_shared {
            store.create_shared(*key, *value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_the_stock_configs() {
        assert!(WorkloadConfig::default().validate().is_ok());
        assert!(WorkloadConfig::small().validate().is_ok());
        assert!(WorkloadConfig::hot_accounts().validate().is_ok());
        // Payments-only workloads are allowed to have no shared objects.
        let payments_only = WorkloadConfig {
            num_shared_objects: 0,
            ..WorkloadConfig::small().with_payment_share(1.0)
        };
        assert!(payments_only.validate().is_ok());
    }

    #[test]
    fn validate_rejects_impossible_configs() {
        let cases: Vec<WorkloadConfig> = vec![
            WorkloadConfig {
                num_accounts: 1,
                ..WorkloadConfig::small()
            },
            WorkloadConfig {
                num_transactions: 0,
                ..WorkloadConfig::small()
            },
            WorkloadConfig {
                payment_share: 1.5,
                ..WorkloadConfig::small()
            },
            WorkloadConfig {
                multi_payer_share: -0.1,
                ..WorkloadConfig::small()
            },
            WorkloadConfig {
                zipf_exponent: f64::NAN,
                ..WorkloadConfig::small()
            },
            WorkloadConfig {
                max_transfer: 0,
                ..WorkloadConfig::small()
            },
            WorkloadConfig {
                num_shared_objects: 0,
                ..WorkloadConfig::small().with_payment_share(0.5)
            },
        ];
        for config in cases {
            assert!(config.validate().is_err(), "accepted: {config:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::generate(WorkloadConfig::small());
        let b = Workload::generate(WorkloadConfig::small());
        assert_eq!(a.transactions, b.transactions);
        assert_eq!(a.genesis_accounts, b.genesis_accounts);
        let c = Workload::generate(WorkloadConfig::small().with_seed(7));
        assert_ne!(a.transactions, c.transactions);
    }

    #[test]
    fn payment_share_is_respected() {
        let config = WorkloadConfig {
            num_transactions: 5_000,
            ..WorkloadConfig::small()
        };
        let w = Workload::generate(config.clone().with_payment_share(0.46));
        assert!(
            (w.payment_fraction() - 0.46).abs() < 0.05,
            "{}",
            w.payment_fraction()
        );
        let all_payments = Workload::generate(config.clone().with_payment_share(1.0));
        assert_eq!(all_payments.payment_fraction(), 1.0);
        let no_payments = Workload::generate(config.with_payment_share(0.0));
        assert_eq!(no_payments.payment_fraction(), 0.0);
    }

    #[test]
    fn every_transaction_validates() {
        let w = Workload::generate(WorkloadConfig::small().with_transactions(1_000));
        for tx in &w.transactions {
            tx.validate().expect("generated transaction must be valid");
            assert_eq!(tx.payload_bytes, DEFAULT_PAYLOAD_BYTES);
        }
    }

    #[test]
    fn ids_are_unique() {
        let w = Workload::generate(WorkloadConfig::small().with_transactions(2_000));
        let mut ids: Vec<TxId> = w.transactions.iter().map(|tx| tx.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), w.transactions.len());
    }

    #[test]
    fn genesis_matches_population() {
        let w = Workload::generate(WorkloadConfig::small());
        assert_eq!(w.genesis_accounts.len(), 64);
        assert_eq!(w.genesis_shared.len(), 8);
        let mut store = orthrus_execution::ObjectStore::new();
        w.install_genesis(&mut store);
        assert_eq!(store.len(), 64 + 8);
        assert_eq!(
            store.balance(ObjectKey::account_of(ClientId::new(0))),
            w.config.initial_balance
        );
    }

    #[test]
    fn sender_popularity_is_skewed() {
        let w = Workload::generate(WorkloadConfig {
            num_transactions: 20_000,
            zipf_exponent: 1.0,
            ..WorkloadConfig::small()
        });
        // Count how many transactions are debited from the 5 most popular
        // accounts; with 64 accounts and uniform choice this would be ~7.8%.
        let mut counts = vec![0u32; 64];
        for tx in &w.transactions {
            if let Some(payer) = tx.payers().next() {
                counts[payer.value() as usize] += 1;
            }
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let head: u32 = counts.iter().take(5).sum();
        let share = head as f64 / w.transactions.len() as f64;
        assert!(share > 0.2, "head share {share}");
    }

    /// Whatever the configuration, generated transactions are structurally
    /// valid, payments touch only owned objects and contracts touch at least
    /// one shared object. (Seeded-loop replacement for the former
    /// property-based test.)
    #[test]
    fn generated_transactions_are_well_formed_across_configs() {
        for seed in 0u64..30 {
            let mut knob = StdRng::seed_from_u64(seed ^ 0xA5A5);
            let share: f64 = knob.gen_range(0.0..1.0);
            let multi: f64 = knob.gen_range(0.0..0.5);
            let config = WorkloadConfig {
                payment_share: share,
                multi_payer_share: multi,
                num_transactions: 200,
                ..WorkloadConfig::small()
            }
            .with_seed(seed);
            let w = Workload::generate(config);
            for tx in &w.transactions {
                assert!(tx.validate().is_ok(), "seed {seed}");
                match tx.kind {
                    TxKind::Payment => {
                        assert_eq!(tx.shared_objects().count(), 0, "seed {seed}");
                        assert!(tx.total_debit() > 0, "seed {seed}");
                    }
                    TxKind::Contract => {
                        assert!(tx.shared_objects().count() >= 1, "seed {seed}");
                    }
                }
            }
        }
    }
}
