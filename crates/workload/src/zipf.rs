//! A small, dependency-free Zipf sampler.
//!
//! Account popularity in public blockchains is heavily skewed: a few
//! exchanges and contracts appear in a large fraction of transactions while
//! most accounts are touched rarely. The paper's evaluation replays a real
//! Ethereum trace; our synthetic substitute (see `DESIGN.md`) reproduces the
//! skew with a Zipf distribution over the account population.

use orthrus_types::rng::Rng;

/// Zipf distribution over `{0, 1, …, n-1}` with exponent `s`
/// (`P(k) ∝ 1 / (k+1)^s`).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution for `n` elements with exponent `s`.
    ///
    /// `s = 0` degenerates to the uniform distribution; `s ≈ 1` matches the
    /// classic "80/20"-style skew observed in blockchain workloads.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for value in &mut cdf {
            *value /= total;
        }
        // Guard against floating point drift on the last bucket.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of elements in the support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Is the support empty? (Never true: construction requires `n > 0`.)
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample one element (its index in `0..n`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(idx) => idx,
            Err(idx) => idx.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::rng::StdRng;

    #[test]
    fn uniform_when_exponent_is_zero() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 800.0, "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_when_exponent_is_high() {
        let zipf = Zipf::new(1_000, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0u32;
        let samples = 50_000;
        for _ in 0..samples {
            if zipf.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s = 1 and n = 1000 the top-10 mass is ~39%; uniform would be 1%.
        let share = head as f64 / samples as f64;
        assert!(share > 0.3, "head share was {share}");
    }

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipf::new(7, 1.2);
        assert_eq!(zipf.len(), 7);
        assert!(!zipf.is_empty());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn single_element_support() {
        let zipf = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(zipf.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
