//! The virtual-time event queue at the heart of the discrete-event engine.
//!
//! Events are ordered by `(time, insertion sequence)`. The insertion sequence
//! acts as a deterministic tie-breaker for events scheduled at the same
//! virtual time, which keeps runs reproducible regardless of queue internals.
//!
//! Two interchangeable implementations live behind [`EventQueue`]:
//!
//! * **Heap** — a global `BinaryHeap`, `O(log n)` per operation. Simple and
//!   the historical baseline.
//! * **Calendar** — a calendar queue (bucketed timing wheel): the near future
//!   is divided into fixed-width buckets, events land in the bucket covering
//!   their timestamp, and a cursor walks the buckets in virtual-time order.
//!   Insert and pop are amortized `O(1)`; the bucket count doubles (a "year
//!   resize") when occupancy grows and halves again when the queue drains.
//!   Events beyond the wheel's horizon wait in an overflow heap and migrate
//!   into the wheel as the cursor's window slides over them.
//!
//! Both implementations pop in exactly the same `(time, seq)` order, so a
//! simulation trace is bit-identical regardless of [`QueueKind`] — the
//! differential tests in `tests/determinism.rs` and the seeded-loop tests
//! below pin that down.

use orthrus_types::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which event-queue implementation a simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueKind {
    /// Global binary heap: `O(log n)` per operation.
    Heap,
    /// Calendar queue: amortized `O(1)` per operation, the default.
    #[default]
    Calendar,
}

/// An entry in the event queue.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> Entry<E> {
    /// The total order all queue implementations agree on.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        other.key().cmp(&self.key())
    }
}

/// Initial width of one calendar bucket, as a power of two of microseconds.
/// Network events are spaced tens of microseconds (LAN processing) to
/// hundreds of milliseconds (WAN propagation) apart; 256 µs is a reasonable
/// opening guess, and every year resize re-derives the width from the
/// observed event density so dense bursts get fine buckets and sparse timer
/// wheels get coarse ones. Widths stay powers of two so bucket mapping is a
/// shift, not a division.
const INITIAL_WIDTH_LOG2: u32 = 8;
/// Bounds for the adaptive bucket width (2^0 = 1 µs — the clock resolution —
/// up to 2^20 ≈ 1 s for nearly idle queues).
const MIN_WIDTH_LOG2: u32 = 0;
const MAX_WIDTH_LOG2: u32 = 20;
/// Bucket count bounds for the year resize. The maximum caps the slot array
/// at 64 Ki entries; occupancy beyond that grows linearly but stays cheap
/// because the width adaptation keeps events spread across the wheel.
const MIN_BUCKETS: usize = 1 << 10;
const MAX_BUCKETS: usize = 1 << 16;

/// The calendar-queue core: a timing wheel over absolute bucket indices
/// `[cursor, cursor + slots.len())` plus an overflow heap for events beyond
/// that window.
#[derive(Debug)]
struct Calendar<E> {
    /// `slots[b % slots.len()]` holds the events of absolute bucket `b` for
    /// every `b` in the current window. Slot contents are unsorted; pops scan
    /// the cursor slot for the `(time, seq)` minimum.
    slots: Vec<Vec<Entry<E>>>,
    /// log2 of the microseconds per bucket; re-derived from event density on
    /// rebuild. Power-of-two widths make `bucket_of` a shift.
    width_log2: u32,
    /// `slots.len() - 1`; the bucket count is always a power of two, so the
    /// slot of absolute bucket `b` is `b & slot_mask`.
    slot_mask: u64,
    /// Absolute index of the bucket the cursor is in (`time >> width_log2`).
    cursor: u64,
    /// Number of events currently in the wheel (excludes the overflow heap).
    wheel_len: usize,
    /// Far-future events, min-first. Migrated into the wheel as the window
    /// slides over their bucket.
    overflow: BinaryHeap<Entry<E>>,
}

impl<E> Calendar<E> {
    fn new() -> Self {
        Self {
            slots: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width_log2: INITIAL_WIDTH_LOG2,
            slot_mask: MIN_BUCKETS as u64 - 1,
            cursor: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    #[inline]
    fn bucket_of(&self, time: SimTime) -> u64 {
        time.0 >> self.width_log2
    }

    fn insert(&mut self, entry: Entry<E>) {
        self.insert_no_resize(entry);
        if self.wheel_len > self.slots.len() * 2 && self.slots.len() < MAX_BUCKETS {
            self.rebuild(self.slots.len() * 2);
        }
    }

    fn insert_no_resize(&mut self, entry: Entry<E>) {
        // Events at or before the cursor's bucket (the engine only schedules
        // "now" or later, but unit tests may schedule in the past) land in
        // the cursor slot; the pop-time min scan still orders them correctly
        // because it compares (time, seq), not slot positions.
        let b = self.bucket_of(entry.time).max(self.cursor);
        if b < self.cursor + self.slots.len() as u64 {
            self.slots[(b & self.slot_mask) as usize].push(entry);
            self.wheel_len += 1;
        } else {
            self.overflow.push(entry);
        }
    }

    /// Year resize: rebuild the wheel with `new_size` buckets, re-deriving
    /// the bucket width from the observed event density, repositioning the
    /// cursor at the earliest pending event and re-bucketing everything
    /// (overflow entries whose bucket now fits the wider window move in).
    fn rebuild(&mut self, new_size: usize) {
        let mut all: Vec<Entry<E>> = Vec::with_capacity(self.len());
        for slot in &mut self.slots {
            all.append(slot);
        }
        all.extend(self.overflow.drain());
        self.slots = (0..new_size).map(|_| Vec::new()).collect();
        self.slot_mask = new_size as u64 - 1;
        self.wheel_len = 0;
        if !all.is_empty() {
            let (min, max) = all.iter().fold((u64::MAX, 0u64), |(lo, hi), e| {
                (lo.min(e.time.0), hi.max(e.time.0))
            });
            if all.len() >= 2 {
                // Aim for ~2 events per bucket across the pending span —
                // dense bursts (millions of events over milliseconds) get
                // microsecond buckets, sparse timer wheels get coarse ones —
                // but never let the window shrink below the span itself,
                // otherwise the far end of the distribution churns through
                // the overflow heap. Widths round up to a power of two so
                // bucket mapping stays a shift.
                let span = max - min;
                let per_event = 2 * span / all.len() as u64;
                let cover = span / new_size as u64 + 1;
                self.width_log2 = per_event
                    .max(cover)
                    .next_power_of_two()
                    .trailing_zeros()
                    .clamp(MIN_WIDTH_LOG2, MAX_WIDTH_LOG2);
            }
            self.cursor = min >> self.width_log2;
        }
        for entry in all {
            self.insert_no_resize(entry);
        }
    }

    /// Pull overflow events whose bucket fell inside the current window.
    fn migrate_overflow(&mut self) {
        let end = self.cursor + self.slots.len() as u64;
        let shift = self.width_log2;
        while self
            .overflow
            .peek()
            .is_some_and(|e| (e.time.0 >> shift) < end)
        {
            let entry = self.overflow.pop().expect("peeked entry exists");
            self.insert_no_resize(entry);
        }
    }

    /// Advance the cursor to the slot holding the earliest event, migrating
    /// overflow entries as the window slides. Returns `false` when empty.
    ///
    /// Every wheel event lives in the current window, so the scan terminates
    /// within one lap; skipping an empty bucket is a `Vec::is_empty` check.
    fn settle(&mut self) -> bool {
        if self.wheel_len == 0 {
            match self.overflow.peek() {
                // Jump the window straight to the earliest far-future event
                // rather than walking every empty bucket in between.
                Some(e) => self.cursor = e.time.0 >> self.width_log2,
                None => return false,
            }
        }
        self.migrate_overflow();
        while self.slots[(self.cursor & self.slot_mask) as usize].is_empty() {
            self.cursor += 1;
            self.migrate_overflow();
        }
        true
    }

    fn peek_min(&mut self) -> Option<SimTime> {
        if !self.settle() {
            return None;
        }
        self.slots[(self.cursor & self.slot_mask) as usize]
            .iter()
            .map(Entry::key)
            .min()
            .map(|(time, _)| time)
    }

    /// Pop the earliest event, or return its time untouched when it is after
    /// `limit` — the engine's deadline check folded into one settle + scan.
    fn pop_before(&mut self, limit: SimTime) -> Result<Entry<E>, Option<SimTime>> {
        if !self.settle() {
            return Err(None);
        }
        let slot = &mut self.slots[(self.cursor & self.slot_mask) as usize];
        let mut best = 0;
        for i in 1..slot.len() {
            if slot[i].key() < slot[best].key() {
                best = i;
            }
        }
        if slot[best].time > limit {
            return Err(Some(slot[best].time));
        }
        let entry = slot.swap_remove(best);
        self.wheel_len -= 1;
        // Shrink only when the wheel is drastically over-provisioned (32x):
        // workloads whose queue size breathes across a power-of-two boundary
        // must not thrash through O(len) rebuilds every cycle.
        if self.len() * 32 < self.slots.len() && self.slots.len() > MIN_BUCKETS {
            self.rebuild(self.slots.len() / 2);
        }
        Ok(entry)
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        self.pop_before(SimTime(u64::MAX)).ok()
    }
}

/// The implementation selected by [`QueueKind`].
#[derive(Debug)]
enum Core<E> {
    Heap(BinaryHeap<Entry<E>>),
    Calendar(Calendar<E>),
}

/// A deterministic priority queue of simulation events.
#[derive(Debug)]
pub struct EventQueue<E> {
    core: Core<E>,
    next_seq: u64,
    scheduled: u64,
    processed: u64,
    peak_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the default implementation (calendar).
    pub fn new() -> Self {
        Self::with_kind(QueueKind::default())
    }

    /// Create an empty queue with an explicit implementation. Both kinds pop
    /// in identical `(time, seq)` order; the choice only affects performance.
    pub fn with_kind(kind: QueueKind) -> Self {
        let core = match kind {
            QueueKind::Heap => Core::Heap(BinaryHeap::new()),
            QueueKind::Calendar => Core::Calendar(Calendar::new()),
        };
        Self {
            core,
            next_seq: 0,
            scheduled: 0,
            processed: 0,
            peak_len: 0,
        }
    }

    /// Which implementation this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match self.core {
            Core::Heap(_) => QueueKind::Heap,
            Core::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// Schedule `payload` to fire at absolute virtual time `time`.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        let entry = Entry { time, seq, payload };
        match &mut self.core {
            Core::Heap(heap) => heap.push(entry),
            Core::Calendar(cal) => cal.insert(entry),
        }
        self.peak_len = self.peak_len.max(self.len());
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = match &mut self.core {
            Core::Heap(heap) => heap.pop(),
            Core::Calendar(cal) => cal.pop(),
        }?;
        self.processed += 1;
        Some((entry.time, entry.payload))
    }

    /// Pop the earliest event if its time is at most `limit`; otherwise leave
    /// the queue untouched and return `Err` with the time of the next event
    /// (`Err(None)` when empty). One operation instead of a peek-then-pop
    /// pair, which matters for the calendar implementation's cursor scan.
    #[allow(clippy::type_complexity)]
    pub fn pop_before(&mut self, limit: SimTime) -> Result<(SimTime, E), Option<SimTime>> {
        let entry = match &mut self.core {
            Core::Heap(heap) => match heap.peek() {
                None => return Err(None),
                Some(e) if e.time > limit => return Err(Some(e.time)),
                Some(_) => heap.pop().expect("peeked entry exists"),
            },
            Core::Calendar(cal) => cal.pop_before(limit)?,
        };
        self.processed += 1;
        Ok((entry.time, entry.payload))
    }

    /// Virtual time of the next event without removing it. Takes `&mut self`
    /// because the calendar implementation may advance its cursor past empty
    /// buckets (a semantic no-op).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.core {
            Core::Heap(heap) => heap.peek().map(|e| e.time),
            Core::Calendar(cal) => cal.peek_min(),
        }
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        match &self.core {
            Core::Heap(heap) => heap.len(),
            Core::Calendar(cal) => cal.len(),
        }
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total number of events ever popped.
    pub fn total_processed(&self) -> u64 {
        self.processed
    }

    /// Largest number of events that were ever waiting simultaneously.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// The sequence number the next scheduled event will receive.
    pub(crate) fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Remove every entry with `time < limit`, in exact pop order, returning
    /// the raw `(time, seq, payload)` triples. Unlike [`EventQueue::pop`]
    /// this does NOT touch the processed counter: the parallel engine drains
    /// a window to plan it, re-inserts the entries verbatim via
    /// [`EventQueue::restore`], and then replays them through the normal pop
    /// path — which is where the counters (and `peak_len`) must move, so the
    /// round trip is invisible in the queue statistics.
    pub(crate) fn drain_upto(&mut self, limit: SimTime) -> Vec<(SimTime, u64, E)> {
        let mut out = Vec::new();
        if limit.0 == 0 {
            return out;
        }
        let below = SimTime(limit.0 - 1);
        loop {
            let entry = match &mut self.core {
                Core::Heap(heap) => match heap.peek() {
                    None => break,
                    Some(e) if e.time > below => break,
                    Some(_) => heap.pop().expect("peeked entry exists"),
                },
                Core::Calendar(cal) => match cal.pop_before(below) {
                    Ok(entry) => entry,
                    Err(_) => break,
                },
            };
            out.push((entry.time, entry.seq, entry.payload));
        }
        out
    }

    /// Re-insert entries previously removed by [`EventQueue::drain_upto`]
    /// with their original `(time, seq)` keys, bypassing the scheduled/peak
    /// bookkeeping (the entries were already counted when first scheduled).
    pub(crate) fn restore(&mut self, entries: Vec<(SimTime, u64, E)>) {
        for (time, seq, payload) in entries {
            let entry = Entry { time, seq, payload };
            match &mut self.core {
                Core::Heap(heap) => heap.push(entry),
                Core::Calendar(cal) => cal.insert(entry),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::rng::{Rng, StdRng};

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    const BOTH: [QueueKind; 2] = [QueueKind::Heap, QueueKind::Calendar];

    #[test]
    fn pops_in_time_order() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(t(30), "c");
            q.schedule(t(10), "a");
            q.schedule(t(20), "b");
            assert_eq!(q.len(), 3);
            assert_eq!(q.pop(), Some((t(10), "a")));
            assert_eq!(q.pop(), Some((t(20), "b")));
            assert_eq!(q.pop(), Some((t(30), "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            for i in 0..100 {
                q.schedule(t(5), i);
            }
            let popped: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
            assert_eq!(popped, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn peek_does_not_remove() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(t(7), 1u32);
            assert_eq!(q.peek_time(), Some(t(7)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn counters_track_activity() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(t(1), ());
            q.schedule(t(2), ());
            q.pop();
            assert_eq!(q.total_scheduled(), 2);
            assert_eq!(q.total_processed(), 1);
            assert_eq!(q.peak_len(), 2);
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(t(10), 10);
            q.schedule(t(5), 5);
            assert_eq!(q.pop(), Some((t(5), 5)));
            q.schedule(t(1), 1);
            // An event scheduled "in the past" still pops first; the engine
            // guards against this separately by clamping to `now`.
            assert_eq!(q.pop(), Some((t(1), 1)));
            assert_eq!(q.pop(), Some((t(10), 10)));
        }
    }

    #[test]
    fn pop_before_respects_the_limit() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            assert_eq!(q.pop_before(t(100)), Err(None));
            q.schedule(t(10), "a");
            q.schedule(t(30), "b");
            assert_eq!(q.pop_before(t(5)), Err(Some(t(10))));
            assert_eq!(q.pop_before(t(10)), Ok((t(10), "a")));
            assert_eq!(q.pop_before(t(20)), Err(Some(t(30))));
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop_before(t(1_000)), Ok((t(30), "b")));
            assert_eq!(q.pop_before(t(1_000)), Err(None));
        }
    }

    #[test]
    fn default_kind_is_calendar() {
        let q: EventQueue<u32> = EventQueue::new();
        assert_eq!(q.kind(), QueueKind::Calendar);
        let q: EventQueue<u32> = EventQueue::with_kind(QueueKind::Heap);
        assert_eq!(q.kind(), QueueKind::Heap);
    }

    #[test]
    fn bucket_boundary_times_stay_ordered() {
        // Times exactly on, just before and just after bucket boundaries,
        // scheduled out of order, must still pop in (time, seq) order.
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            let w = 1u64 << INITIAL_WIDTH_LOG2;
            let times: Vec<u64> = (0..16)
                .flat_map(|b| [b * w, b * w + 1, (b + 1) * w - 1, b * w + w / 2])
                .collect();
            for (i, &us) in times.iter().enumerate().rev() {
                q.schedule(SimTime::from_micros(us), i);
            }
            let mut last = (SimTime::ZERO, 0u64);
            let mut count = 0;
            while let Some((time, _)) = q.pop() {
                assert!(time >= last.0, "pop went backwards: {time:?} < {last:?}");
                last = (time, 0);
                count += 1;
            }
            assert_eq!(count, times.len());
        }
    }

    #[test]
    fn far_future_events_go_through_overflow_and_back() {
        // Schedule events far beyond the wheel's window (hours of virtual
        // time) interleaved with near-term events; ordering must hold.
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_secs(3600), "hour");
            q.schedule(SimTime::from_micros(10), "soon");
            q.schedule(SimTime::from_secs(86_400), "day");
            q.schedule(SimTime::from_secs(30), "half-minute");
            assert_eq!(q.pop().unwrap().1, "soon");
            assert_eq!(q.pop().unwrap().1, "half-minute");
            // Schedule more after partially draining.
            q.schedule(SimTime::from_secs(7200), "two-hours");
            assert_eq!(q.pop().unwrap().1, "hour");
            assert_eq!(q.pop().unwrap().1, "two-hours");
            assert_eq!(q.pop().unwrap().1, "day");
            assert_eq!(q.pop(), None);
        }
    }

    /// Differential property test: for many seeds, a random interleaving of
    /// schedules and pops produces identical pop sequences on both queue
    /// implementations, across bucket boundaries, past schedules, dense ties
    /// and far-future overflow horizons.
    #[test]
    fn heap_and_calendar_pop_identically_on_random_workloads() {
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut heap = EventQueue::with_kind(QueueKind::Heap);
            let mut cal = EventQueue::with_kind(QueueKind::Calendar);
            let mut now = 0u64;
            let mut next_id = 0u64;
            for _ in 0..2_000 {
                let burst = rng.gen_range(0..6u32);
                for _ in 0..burst {
                    // Mix of sub-bucket, multi-bucket and far-future offsets,
                    // with occasional exact-boundary and duplicate times.
                    let offset = match rng.gen_range(0..10u32) {
                        0..=3 => rng.gen_range(0..1u64 << INITIAL_WIDTH_LOG2),
                        4..=6 => rng.gen_range(0..50_000u64),
                        7 => rng.gen_range(0..4u64) << INITIAL_WIDTH_LOG2,
                        8 => rng.gen_range(0..100_000_000u64),
                        _ => 0,
                    };
                    let time = SimTime::from_micros(now + offset);
                    heap.schedule(time, next_id);
                    cal.schedule(time, next_id);
                    next_id += 1;
                }
                for _ in 0..rng.gen_range(0..4u32) {
                    let a = heap.pop();
                    let b = cal.pop();
                    assert_eq!(a, b, "divergence at seed {seed}");
                    if let Some((time, _)) = a {
                        now = now.max(time.as_micros());
                    }
                }
                assert_eq!(heap.len(), cal.len());
            }
            // Drain the remainder.
            loop {
                let a = heap.pop();
                let b = cal.pop();
                assert_eq!(a, b, "drain divergence at seed {seed}");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn drain_and_restore_round_trip_is_invisible() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            for i in 0..50u64 {
                q.schedule(SimTime::from_micros(i % 7), i);
            }
            let scheduled = q.total_scheduled();
            let peak = q.peak_len();
            // Drain strictly below 5 µs: pop order must match (time, seq).
            let drained = q.drain_upto(SimTime::from_micros(5));
            let mut last = (SimTime::ZERO, 0u64);
            for &(time, seq, _) in &drained {
                assert!(time < SimTime::from_micros(5));
                assert!((time, seq) > last || last == (SimTime::ZERO, 0));
                last = (time, seq);
            }
            assert_eq!(q.total_processed(), 0, "drain must not count as pops");
            q.restore(drained);
            assert_eq!(q.total_scheduled(), scheduled, "restore must not re-count");
            assert_eq!(q.peak_len(), peak);
            // The restored queue pops exactly like an untouched one.
            let mut fresh = EventQueue::with_kind(kind);
            for i in 0..50u64 {
                fresh.schedule(SimTime::from_micros(i % 7), i);
            }
            loop {
                let a = q.pop();
                assert_eq!(a, fresh.pop());
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn drain_upto_zero_is_a_no_op() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        q.schedule(SimTime::ZERO, 1u32);
        assert!(q.drain_upto(SimTime::ZERO).is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn calendar_survives_growth_and_shrink() {
        // Push enough events to force several year resizes, then drain to
        // force shrinks; ordering and counts must survive both directions.
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        let mut rng = StdRng::seed_from_u64(99);
        let total = 3 * MAX_BUCKETS;
        for i in 0..total {
            let time = SimTime::from_micros(rng.gen_range(0..2_000_000u64));
            q.schedule(time, i);
        }
        assert_eq!(q.len(), total);
        assert_eq!(q.peak_len(), total);
        let mut last = SimTime::ZERO;
        let mut popped = 0usize;
        while let Some((time, _)) = q.pop() {
            assert!(time >= last);
            last = time;
            popped += 1;
        }
        assert_eq!(popped, total);
        assert_eq!(q.total_processed(), total as u64);
    }
}
