//! The virtual-time event queue at the heart of the discrete-event engine.
//!
//! Events are ordered by `(time, insertion sequence)`. The insertion sequence
//! acts as a deterministic tie-breaker for events scheduled at the same
//! virtual time, which keeps runs reproducible regardless of heap internals.

use orthrus_types::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the event queue.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of simulation events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled: 0,
            processed: 0,
        }
    }

    /// Schedule `payload` to fire at absolute virtual time `time`.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.processed += 1;
        Some((entry.time, entry.payload))
    }

    /// Virtual time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total number of events ever popped.
    pub fn total_processed(&self) -> u64 {
        self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let popped: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(t(7), 1u32);
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.pop();
        assert_eq!(q.total_scheduled(), 2);
        assert_eq!(q.total_processed(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 10);
        q.schedule(t(5), 5);
        assert_eq!(q.pop(), Some((t(5), 5)));
        q.schedule(t(1), 1);
        // An event scheduled "in the past" still pops first; the engine
        // guards against this separately by clamping to `now`.
        assert_eq!(q.pop(), Some((t(1), 1)));
        assert_eq!(q.pop(), Some((t(10), 10)));
    }
}
