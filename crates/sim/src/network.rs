//! Network models: LAN and 4-region WAN latency, bandwidth and per-message
//! processing cost.
//!
//! The paper's testbed (§VII-A) places replicas in four AWS regions —
//! France (eu-west-3), the United States, Australia and Tokyo — with network
//! interfaces limited to 1 Gbps, and a LAN setting with 1 Gbps private
//! networking. This module reproduces that topology with representative
//! one-way propagation delays; absolute values differ from any particular AWS
//! measurement but preserve the relative geometry (Europe ↔ Australia is the
//! longest path, intra-region is sub-millisecond).

use crate::node::NodeId;
use orthrus_types::rng::Rng;
use orthrus_types::{Duration, NetworkKind};

/// Geographic region hosting a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Paris (eu-west-3).
    France,
    /// N. Virginia (us-east-1).
    UnitedStates,
    /// Sydney (ap-southeast-2).
    Australia,
    /// Tokyo (ap-northeast-1).
    Tokyo,
}

impl Region {
    /// The four regions used by the paper's WAN deployment, in the order
    /// replicas are assigned to them (round-robin).
    pub const ALL: [Region; 4] = [
        Region::France,
        Region::UnitedStates,
        Region::Australia,
        Region::Tokyo,
    ];

    fn index(self) -> usize {
        match self {
            Region::France => 0,
            Region::UnitedStates => 1,
            Region::Australia => 2,
            Region::Tokyo => 3,
        }
    }
}

/// One-way propagation delay between regions in milliseconds. Derived from
/// typical public inter-region RTT measurements (half of RTT), rounded.
const WAN_ONE_WAY_MS: [[u64; 4]; 4] = [
    // France   US    Australia  Tokyo
    [1, 40, 140, 110], // France
    [40, 1, 100, 75],  // United States
    [140, 100, 1, 55], // Australia
    [110, 75, 55, 1],  // Tokyo
];

/// One-way delay inside a LAN (same data centre).
const LAN_ONE_WAY_US: u64 = 250;

/// Network configuration: topology kind, bandwidth, jitter and per-message
/// processing cost.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// LAN or WAN topology.
    pub kind: NetworkKind,
    /// Link bandwidth in bits per second (paper: 1 Gbps).
    pub bandwidth_bps: u64,
    /// Relative jitter applied to propagation delay, e.g. `0.1` for ±10%.
    pub jitter: f64,
    /// CPU cost charged per message at the sender and at the receiver
    /// (signature checks, marshalling). Multiplied by a straggler's slowdown
    /// factor.
    pub processing_per_message: Duration,
    /// Delay for a client co-located request/response hop (client ↔ nearest
    /// replica in the same region).
    pub client_access: Duration,
}

impl NetworkConfig {
    /// The WAN environment of the paper: 4 regions, 1 Gbps, modest jitter.
    pub fn wan() -> Self {
        Self {
            kind: NetworkKind::Wan,
            bandwidth_bps: 1_000_000_000,
            jitter: 0.05,
            processing_per_message: Duration::from_micros(30),
            client_access: Duration::from_millis(5),
        }
    }

    /// The LAN environment of the paper: one data centre, 1 Gbps.
    pub fn lan() -> Self {
        Self {
            kind: NetworkKind::Lan,
            bandwidth_bps: 1_000_000_000,
            jitter: 0.05,
            processing_per_message: Duration::from_micros(30),
            client_access: Duration::from_micros(500),
        }
    }

    /// Construct the configuration matching a [`NetworkKind`].
    pub fn for_kind(kind: NetworkKind) -> Self {
        match kind {
            NetworkKind::Lan => Self::lan(),
            NetworkKind::Wan => Self::wan(),
        }
    }

    /// Region hosting `node`. Replicas are assigned to the four regions
    /// round-robin by id (as in the paper's deployment); clients are likewise
    /// spread round-robin so each client is co-located with some replicas.
    /// In the LAN everything is in one region.
    pub fn region_of(&self, node: NodeId) -> Region {
        match self.kind {
            NetworkKind::Lan => Region::France,
            NetworkKind::Wan => {
                let idx = match node {
                    NodeId::Replica(r) => r.value() as usize,
                    NodeId::Client(c) => c.value() as usize,
                };
                Region::ALL[idx % Region::ALL.len()]
            }
        }
    }

    /// Base one-way propagation delay between two nodes (no jitter, no
    /// bandwidth component).
    pub fn base_latency(&self, from: NodeId, to: NodeId) -> Duration {
        if from == to {
            return Duration::from_micros(1);
        }
        match self.kind {
            NetworkKind::Lan => Duration::from_micros(LAN_ONE_WAY_US),
            NetworkKind::Wan => {
                let a = self.region_of(from).index();
                let b = self.region_of(to).index();
                Duration::from_millis(WAN_ONE_WAY_MS[a][b])
            }
        }
    }

    /// Propagation delay between two nodes with jitter sampled from `rng`.
    pub fn sample_latency<R: Rng + ?Sized>(
        &self,
        from: NodeId,
        to: NodeId,
        rng: &mut R,
    ) -> Duration {
        let base = self.base_latency(from, to);
        if self.jitter <= 0.0 || base.as_micros() == 0 {
            return base;
        }
        let factor = 1.0 + rng.gen_range(-self.jitter..=self.jitter);
        base.mul_f64(factor.max(0.0))
    }

    /// Conservative lower bound on the engine-observed delivery delay of any
    /// message between two *distinct* nodes: the lookahead of the parallel
    /// engine's time windows.
    ///
    /// The engine charges `processing_per_message` at the sender (NIC slot
    /// start) and again at the receiver, plus the jittered propagation delay,
    /// plus a non-negative serialization delay, all scaled by straggler
    /// factors that are always ≥ 1. The smallest possible cross-node latency
    /// is therefore `2 × processing + (1 − jitter) × min cross-node base`;
    /// one extra microsecond is shaved off to stay strictly below any
    /// `mul_f64` round-to-nearest result. Self-sends (1 µs base) are *not*
    /// covered — the window scheduler treats those as lane-local spawns.
    pub fn delivery_lookahead(&self) -> Duration {
        let min_base = match self.kind {
            NetworkKind::Lan => Duration::from_micros(LAN_ONE_WAY_US),
            NetworkKind::Wan => {
                let min_ms = WAN_ONE_WAY_MS
                    .iter()
                    .flatten()
                    .copied()
                    .min()
                    .expect("matrix is non-empty");
                Duration::from_millis(min_ms)
            }
        };
        let jittered_floor = (min_base.as_micros() as f64 * (1.0 - self.jitter)).floor() as u64;
        let processing = self.processing_per_message.as_micros();
        Duration::from_micros((2 * processing + jittered_floor).saturating_sub(1))
    }

    /// Serialization (transmission) delay of `bytes` on a link of this
    /// bandwidth.
    pub fn serialization_delay(&self, bytes: u64) -> Duration {
        if self.bandwidth_bps == 0 {
            return Duration::ZERO;
        }
        let micros = bytes.saturating_mul(8).saturating_mul(1_000_000) / self.bandwidth_bps;
        Duration::from_micros(micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::rng::StdRng;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn wan_matrix_is_symmetric_and_plausible() {
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(WAN_ONE_WAY_MS[i][j], WAN_ONE_WAY_MS[j][i]);
            }
            assert_eq!(WAN_ONE_WAY_MS[i][i], 1);
        }
        // Europe <-> Australia is the longest link.
        assert!(WAN_ONE_WAY_MS[0][2] >= WAN_ONE_WAY_MS[0][1]);
        assert!(WAN_ONE_WAY_MS[0][2] >= WAN_ONE_WAY_MS[0][3]);
    }

    #[test]
    fn region_assignment_round_robin() {
        let net = NetworkConfig::wan();
        assert_eq!(net.region_of(NodeId::replica(0)), Region::France);
        assert_eq!(net.region_of(NodeId::replica(1)), Region::UnitedStates);
        assert_eq!(net.region_of(NodeId::replica(2)), Region::Australia);
        assert_eq!(net.region_of(NodeId::replica(3)), Region::Tokyo);
        assert_eq!(net.region_of(NodeId::replica(4)), Region::France);
    }

    #[test]
    fn lan_is_flat() {
        let net = NetworkConfig::lan();
        assert_eq!(
            net.base_latency(NodeId::replica(0), NodeId::replica(63)),
            Duration::from_micros(LAN_ONE_WAY_US)
        );
        assert_eq!(net.region_of(NodeId::replica(17)), Region::France);
    }

    #[test]
    fn wan_latency_depends_on_regions() {
        let net = NetworkConfig::wan();
        // replica 0 (France) -> replica 2 (Australia) is the long haul.
        let long = net.base_latency(NodeId::replica(0), NodeId::replica(2));
        // replica 0 (France) -> replica 4 (France) is intra-region.
        let short = net.base_latency(NodeId::replica(0), NodeId::replica(4));
        assert!(long > short);
        assert_eq!(long, Duration::from_millis(140));
        assert_eq!(short, Duration::from_millis(1));
    }

    #[test]
    fn self_messages_are_near_instant() {
        let net = NetworkConfig::wan();
        assert_eq!(
            net.base_latency(NodeId::replica(5), NodeId::replica(5)),
            Duration::from_micros(1)
        );
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let net = NetworkConfig::wan();
        let mut rng = StdRng::seed_from_u64(7);
        let base = net
            .base_latency(NodeId::replica(0), NodeId::replica(1))
            .as_micros() as f64;
        for _ in 0..200 {
            let sampled = net
                .sample_latency(NodeId::replica(0), NodeId::replica(1), &mut rng)
                .as_micros() as f64;
            assert!(sampled >= base * 0.94 && sampled <= base * 1.06);
        }
    }

    #[test]
    fn lookahead_is_a_strict_lower_bound_on_cross_node_latency() {
        for net in [NetworkConfig::lan(), NetworkConfig::wan()] {
            let lookahead = net.delivery_lookahead();
            assert!(lookahead > Duration::ZERO);
            let mut rng = StdRng::seed_from_u64(11);
            let processing = net.processing_per_message;
            for from in 0..8u32 {
                for to in 0..8u32 {
                    if from == to {
                        continue;
                    }
                    for _ in 0..50 {
                        let total = processing
                            + net.sample_latency(
                                NodeId::replica(from),
                                NodeId::replica(to),
                                &mut rng,
                            )
                            + processing;
                        assert!(
                            total > lookahead,
                            "{:?}: sampled {total:?} <= lookahead {lookahead:?}",
                            net.kind
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn serialization_delay_matches_bandwidth() {
        let net = NetworkConfig::wan();
        // 1 Gbps: 125 bytes take 1 microsecond.
        assert_eq!(net.serialization_delay(125), Duration::from_micros(1));
        // A 2 MB block takes ~16 ms.
        let block = net.serialization_delay(2_000_000);
        assert!(block >= Duration::from_millis(15) && block <= Duration::from_millis(17));
    }

    #[test]
    fn for_kind_dispatch() {
        assert_eq!(
            NetworkConfig::for_kind(NetworkKind::Lan),
            NetworkConfig::lan()
        );
        assert_eq!(
            NetworkConfig::for_kind(NetworkKind::Wan),
            NetworkConfig::wan()
        );
    }
}
