//! Measurement: per-transaction latency, stage breakdowns, throughput over
//! time.
//!
//! The collector mirrors the metrics reported in the paper's evaluation:
//!
//! * **throughput** — transactions confirmed to clients per second (§VII-B);
//! * **latency** — end-to-end delay from submission until the client has
//!   `f + 1` replies (§VII-B);
//! * **latency breakdown** — the five stages of Fig. 6: sending,
//!   pre-processing, partial ordering, global ordering, reply;
//! * **time series** — throughput and latency averaged over 0.5 s intervals
//!   (Fig. 7).

use orthrus_types::{Duration, SimTime, TxId};
use std::collections::HashMap;

/// The processing stages a transaction passes through (paper §VII-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyStage {
    /// Client sent the transaction → first replica received it.
    Send,
    /// Replica received the transaction → the transaction was included in a
    /// broadcast block.
    Preprocess,
    /// Block broadcast → block delivered by its SB instance.
    PartialOrdering,
    /// Block delivered → transaction confirmed (globally ordered and
    /// executed, or fast-path executed for Orthrus payments).
    GlobalOrdering,
    /// Replica confirmation → client holds `f + 1` matching replies.
    Reply,
}

impl LatencyStage {
    /// All stages in pipeline order.
    pub const ALL: [LatencyStage; 5] = [
        LatencyStage::Send,
        LatencyStage::Preprocess,
        LatencyStage::PartialOrdering,
        LatencyStage::GlobalOrdering,
        LatencyStage::Reply,
    ];

    fn index(self) -> usize {
        match self {
            LatencyStage::Send => 0,
            LatencyStage::Preprocess => 1,
            LatencyStage::PartialOrdering => 2,
            LatencyStage::GlobalOrdering => 3,
            LatencyStage::Reply => 4,
        }
    }

    /// Human-readable label matching Fig. 6's legend.
    pub fn label(self) -> &'static str {
        match self {
            LatencyStage::Send => "Send",
            LatencyStage::Preprocess => "Preprocessing",
            LatencyStage::PartialOrdering => "Partial ordering",
            LatencyStage::GlobalOrdering => "Global ordering",
            LatencyStage::Reply => "Reply",
        }
    }
}

/// Per-transaction timing record.
#[derive(Debug, Clone, Default)]
struct TxRecord {
    submitted: Option<SimTime>,
    /// First time each stage completed (indexed by [`LatencyStage::index`]).
    stages: [Option<SimTime>; 5],
    confirmed: Option<SimTime>,
    aborted: bool,
}

/// One point of a throughput or latency time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// End of the measurement bucket, in seconds of virtual time.
    pub time_s: f64,
    /// Value of the metric in this bucket (ktps for throughput, seconds for
    /// latency).
    pub value: f64,
}

/// Average time spent in each stage (Fig. 6 / Fig. 1b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyBreakdown {
    /// Average sending delay.
    pub send: Duration,
    /// Average pre-processing delay.
    pub preprocess: Duration,
    /// Average partial-ordering (consensus) delay.
    pub partial_ordering: Duration,
    /// Average global-ordering delay.
    pub global_ordering: Duration,
    /// Average reply delay.
    pub reply: Duration,
}

impl LatencyBreakdown {
    /// Total end-to-end latency implied by the breakdown.
    pub fn total(&self) -> Duration {
        self.send + self.preprocess + self.partial_ordering + self.global_ordering + self.reply
    }

    /// Fraction of the total latency attributable to global ordering (the
    /// paper reports up to 92.8% for ISS with a straggler).
    pub fn global_ordering_share(&self) -> f64 {
        let total = self.total().as_micros();
        if total == 0 {
            0.0
        } else {
            self.global_ordering.as_micros() as f64 / total as f64
        }
    }
}

/// Collector of all simulation metrics.
#[derive(Debug, Default)]
pub struct StatsCollector {
    txs: HashMap<TxId, TxRecord>,
    /// Total number of blocks delivered by SB instances.
    pub blocks_delivered: u64,
    /// Total number of view changes completed.
    pub view_changes: u64,
    /// Total protocol messages sent (filled in by the engine).
    pub messages_sent: u64,
    /// Total protocol bytes sent (filled in by the engine).
    pub bytes_sent: u64,
    /// Sum of sim-time (µs) executed global-log occurrences spent waiting on
    /// their global rank: from the block's append to the replica's glog until
    /// the replica popped it for execution (the HYDRA bottleneck metric).
    pub glog_wait_total_us: u64,
    /// Number of glog-wait samples behind [`Self::glog_wait_total_us`].
    pub glog_wait_count: u64,
    /// Largest single glog wait observed, in µs.
    pub glog_wait_max_us: u64,
}

#[inline]
fn merge_min(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    }
}

impl StatsCollector {
    /// Create an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a client submitted a transaction.
    pub fn tx_submitted(&mut self, id: TxId, now: SimTime) {
        let entry = self.txs.entry(id).or_default();
        if entry.submitted.is_none() {
            entry.submitted = Some(now);
        }
    }

    /// Record the first completion time of a pipeline stage for `id`.
    pub fn stage_reached(&mut self, id: TxId, stage: LatencyStage, now: SimTime) {
        let entry = self.txs.entry(id).or_default();
        let slot = &mut entry.stages[stage.index()];
        if slot.is_none() {
            *slot = Some(now);
        }
    }

    /// Record that the client collected `f + 1` replies for `id`.
    pub fn tx_confirmed(&mut self, id: TxId, now: SimTime) {
        let entry = self.txs.entry(id).or_default();
        if entry.confirmed.is_none() {
            entry.confirmed = Some(now);
            entry.stages[LatencyStage::Reply.index()].get_or_insert(now);
        }
    }

    /// Record that `id` was aborted (escrow failure / insufficient funds).
    pub fn tx_aborted(&mut self, id: TxId, now: SimTime) {
        let entry = self.txs.entry(id).or_default();
        entry.aborted = true;
        // An abort is still a confirmation from the client's point of view
        // (the paper: "a transaction is confirmed once it is executed, either
        // successfully or unsuccessfully").
        if entry.confirmed.is_none() {
            entry.confirmed = Some(now);
        }
    }

    /// Record one delivered block.
    pub fn block_delivered(&mut self) {
        self.blocks_delivered += 1;
    }

    /// Record one completed view change.
    pub fn view_change_completed(&mut self) {
        self.view_changes += 1;
    }

    /// Record how long an executed glog occurrence waited on its global rank
    /// (sim-time from glog append to execution pop).
    pub fn glog_wait(&mut self, wait: Duration) {
        let us = wait.as_micros();
        self.glog_wait_total_us += us;
        self.glog_wait_count += 1;
        self.glog_wait_max_us = self.glog_wait_max_us.max(us);
    }

    /// Mean glog wait in µs (0 when nothing was measured).
    pub fn glog_wait_mean_us(&self) -> f64 {
        if self.glog_wait_count == 0 {
            0.0
        } else {
            self.glog_wait_total_us as f64 / self.glog_wait_count as f64
        }
    }

    /// Merge `other` into `self`. Every recorded fact is commutative: the
    /// first-write-wins timestamps merge by minimum (recorders always pass
    /// the current — monotone — engine clock, so the earliest record is the
    /// one the serial walk would have kept), aborts OR, counters and wait
    /// sums add, maxima max. The parallel engine folds lane-local collectors
    /// back through this and lands on the exact serial collector regardless
    /// of merge order.
    pub fn absorb(&mut self, other: StatsCollector) {
        // orthrus: allow(nondet-iter): commutative merge — min for timestamps, OR for aborts, sums for counters — so visit order cannot leak.
        for (id, rec) in other.txs {
            let entry = self.txs.entry(id).or_default();
            entry.submitted = merge_min(entry.submitted, rec.submitted);
            for (slot, incoming) in entry.stages.iter_mut().zip(rec.stages) {
                *slot = merge_min(*slot, incoming);
            }
            entry.confirmed = merge_min(entry.confirmed, rec.confirmed);
            entry.aborted |= rec.aborted;
        }
        self.blocks_delivered += other.blocks_delivered;
        self.view_changes += other.view_changes;
        self.messages_sent += other.messages_sent;
        self.bytes_sent += other.bytes_sent;
        self.glog_wait_total_us += other.glog_wait_total_us;
        self.glog_wait_count += other.glog_wait_count;
        self.glog_wait_max_us = self.glog_wait_max_us.max(other.glog_wait_max_us);
    }

    /// Number of transactions submitted.
    pub fn submitted_count(&self) -> usize {
        // orthrus: allow(nondet-iter): count of a filter — order-free fold.
        self.txs.values().filter(|r| r.submitted.is_some()).count()
    }

    /// Number of transactions confirmed (successfully or not).
    pub fn confirmed_count(&self) -> usize {
        // orthrus: allow(nondet-iter): count of a filter — order-free fold.
        self.txs.values().filter(|r| r.confirmed.is_some()).count()
    }

    /// Number of aborted transactions.
    pub fn aborted_count(&self) -> usize {
        // orthrus: allow(nondet-iter): count of a filter — order-free fold.
        self.txs.values().filter(|r| r.aborted).count()
    }

    /// End-to-end latencies of all confirmed transactions.
    pub fn latencies(&self) -> Vec<Duration> {
        self.txs
            .values()
            .filter_map(|r| match (r.submitted, r.confirmed) {
                (Some(s), Some(c)) => Some(c - s),
                _ => None,
            })
            .collect()
    }

    /// Average end-to-end latency of confirmed transactions.
    pub fn average_latency(&self) -> Duration {
        let lats = self.latencies();
        if lats.is_empty() {
            return Duration::ZERO;
        }
        let sum: u64 = lats.iter().map(|d| d.as_micros()).sum();
        Duration::from_micros(sum / lats.len() as u64)
    }

    /// Latency at the given percentile (0.0–1.0) of confirmed transactions.
    pub fn latency_percentile(&self, pct: f64) -> Duration {
        let mut lats = self.latencies();
        if lats.is_empty() {
            return Duration::ZERO;
        }
        lats.sort_unstable();
        let idx = ((lats.len() - 1) as f64 * pct.clamp(0.0, 1.0)).round() as usize;
        lats[idx]
    }

    /// Overall throughput in kilo-transactions per second: confirmed
    /// transactions divided by the span from first submission to last
    /// confirmation.
    pub fn throughput_ktps(&self) -> f64 {
        let first_submit = self
            .txs
            .values()
            .filter_map(|r| r.submitted)
            .min()
            .unwrap_or(SimTime::ZERO);
        // orthrus: allow(nondet-iter): max over all values — order-free fold.
        let last_confirm = self.txs.values().filter_map(|r| r.confirmed).max();
        let Some(last) = last_confirm else {
            return 0.0;
        };
        let span = (last - first_submit).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.confirmed_count() as f64 / span / 1_000.0
    }

    /// Throughput time series: confirmed transactions per `bucket`, expressed
    /// in ktps, covering the span of the run (Fig. 7a uses 0.5 s buckets).
    pub fn throughput_timeseries(&self, bucket: Duration) -> Vec<ThroughputPoint> {
        let bucket_s = bucket.as_secs_f64();
        if bucket_s <= 0.0 {
            return Vec::new();
        }
        // orthrus: allow(nondet-iter): the collected times feed per-bucket counts — a commutative histogram, insensitive to visit order.
        let confirmations: Vec<SimTime> = self.txs.values().filter_map(|r| r.confirmed).collect();
        let Some(&max_t) = confirmations.iter().max() else {
            return Vec::new();
        };
        let buckets = (max_t.as_secs_f64() / bucket_s).floor() as usize + 1;
        let mut counts = vec![0u64; buckets];
        for t in &confirmations {
            let idx = (t.as_secs_f64() / bucket_s).floor() as usize;
            counts[idx] += 1;
        }
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| ThroughputPoint {
                time_s: (i as f64 + 1.0) * bucket_s,
                value: c as f64 / bucket_s / 1_000.0,
            })
            .collect()
    }

    /// Latency time series: average end-to-end latency of transactions
    /// confirmed within each `bucket` (Fig. 7b).
    pub fn latency_timeseries(&self, bucket: Duration) -> Vec<ThroughputPoint> {
        let bucket_s = bucket.as_secs_f64();
        if bucket_s <= 0.0 {
            return Vec::new();
        }
        let samples: Vec<(SimTime, Duration)> = self
            .txs
            .values()
            .filter_map(|r| match (r.submitted, r.confirmed) {
                (Some(s), Some(c)) => Some((c, c - s)),
                _ => None,
            })
            .collect();
        let Some(max_t) = samples.iter().map(|(c, _)| *c).max() else {
            return Vec::new();
        };
        let buckets = (max_t.as_secs_f64() / bucket_s).floor() as usize + 1;
        let mut sums = vec![0u64; buckets];
        let mut counts = vec![0u64; buckets];
        for (c, lat) in &samples {
            let idx = (c.as_secs_f64() / bucket_s).floor() as usize;
            sums[idx] += lat.as_micros();
            counts[idx] += 1;
        }
        (0..buckets)
            .map(|i| ThroughputPoint {
                time_s: (i as f64 + 1.0) * bucket_s,
                value: if counts[i] == 0 {
                    0.0
                } else {
                    (sums[i] as f64 / counts[i] as f64) / 1e6
                },
            })
            .collect()
    }

    /// Average per-stage latency breakdown over all confirmed transactions
    /// (Fig. 6). Missing intermediate stages contribute zero to their stage
    /// and the time is attributed to the previous known stage boundary.
    pub fn latency_breakdown(&self) -> LatencyBreakdown {
        let mut sums = [0u64; 5];
        let mut count = 0u64;
        // orthrus: allow(nondet-iter): per-stage sums and a count — commutative accumulation.
        for rec in self.txs.values() {
            let (Some(submitted), Some(confirmed)) = (rec.submitted, rec.confirmed) else {
                continue;
            };
            count += 1;
            let mut prev = submitted;
            for stage in LatencyStage::ALL {
                let idx = stage.index();
                let end = match stage {
                    LatencyStage::Reply => confirmed,
                    _ => rec.stages[idx].unwrap_or(prev),
                };
                let end = end.max(prev);
                sums[idx] += (end - prev).as_micros();
                prev = end;
            }
        }
        let avg = |idx: usize| Duration::from_micros(sums[idx].checked_div(count).unwrap_or(0));
        LatencyBreakdown {
            send: avg(0),
            preprocess: avg(1),
            partial_ordering: avg(2),
            global_ordering: avg(3),
            reply: avg(4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::ClientId;

    fn tx(i: u64) -> TxId {
        TxId::new(ClientId::new(0), i)
    }
    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn record_full_tx(stats: &mut StatsCollector, id: TxId, base_ms: u64) {
        stats.tx_submitted(id, at(base_ms));
        stats.stage_reached(id, LatencyStage::Send, at(base_ms + 10));
        stats.stage_reached(id, LatencyStage::Preprocess, at(base_ms + 20));
        stats.stage_reached(id, LatencyStage::PartialOrdering, at(base_ms + 120));
        stats.stage_reached(id, LatencyStage::GlobalOrdering, at(base_ms + 220));
        stats.tx_confirmed(id, at(base_ms + 260));
    }

    #[test]
    fn end_to_end_latency() {
        let mut s = StatsCollector::new();
        record_full_tx(&mut s, tx(0), 0);
        record_full_tx(&mut s, tx(1), 100);
        assert_eq!(s.confirmed_count(), 2);
        assert_eq!(s.average_latency(), Duration::from_millis(260));
        assert_eq!(s.latency_percentile(1.0), Duration::from_millis(260));
    }

    #[test]
    fn double_reports_keep_first_timestamp() {
        let mut s = StatsCollector::new();
        s.tx_submitted(tx(0), at(5));
        s.tx_submitted(tx(0), at(50));
        s.tx_confirmed(tx(0), at(100));
        s.tx_confirmed(tx(0), at(500));
        assert_eq!(s.average_latency(), Duration::from_millis(95));
    }

    #[test]
    fn breakdown_splits_stages() {
        let mut s = StatsCollector::new();
        record_full_tx(&mut s, tx(0), 0);
        let b = s.latency_breakdown();
        assert_eq!(b.send, Duration::from_millis(10));
        assert_eq!(b.preprocess, Duration::from_millis(10));
        assert_eq!(b.partial_ordering, Duration::from_millis(100));
        assert_eq!(b.global_ordering, Duration::from_millis(100));
        assert_eq!(b.reply, Duration::from_millis(40));
        assert_eq!(b.total(), Duration::from_millis(260));
        assert!(b.global_ordering_share() > 0.35 && b.global_ordering_share() < 0.42);
    }

    #[test]
    fn breakdown_handles_missing_stages() {
        let mut s = StatsCollector::new();
        // A fast-path payment that never went through global ordering.
        s.tx_submitted(tx(0), at(0));
        s.stage_reached(tx(0), LatencyStage::Send, at(10));
        s.stage_reached(tx(0), LatencyStage::PartialOrdering, at(100));
        s.tx_confirmed(tx(0), at(120));
        let b = s.latency_breakdown();
        assert_eq!(b.send, Duration::from_millis(10));
        assert_eq!(b.preprocess, Duration::ZERO);
        assert_eq!(b.partial_ordering, Duration::from_millis(90));
        assert_eq!(b.global_ordering, Duration::ZERO);
        assert_eq!(b.reply, Duration::from_millis(20));
    }

    #[test]
    fn aborted_transactions_count_as_confirmed() {
        let mut s = StatsCollector::new();
        s.tx_submitted(tx(0), at(0));
        s.tx_aborted(tx(0), at(30));
        assert_eq!(s.confirmed_count(), 1);
        assert_eq!(s.aborted_count(), 1);
        assert_eq!(s.average_latency(), Duration::from_millis(30));
    }

    #[test]
    fn throughput_counts_confirmations_over_span() {
        let mut s = StatsCollector::new();
        for i in 0..100 {
            s.tx_submitted(tx(i), at(0));
            s.tx_confirmed(tx(i), at(1000));
        }
        // 100 txs over 1 s => 0.1 ktps.
        assert!((s.throughput_ktps() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn timeseries_buckets() {
        let mut s = StatsCollector::new();
        for i in 0..10 {
            s.tx_submitted(tx(i), at(0));
            s.tx_confirmed(tx(i), at(400)); // bucket 0
        }
        for i in 10..14 {
            s.tx_submitted(tx(i), at(0));
            s.tx_confirmed(tx(i), at(900)); // bucket 1
        }
        let series = s.throughput_timeseries(Duration::from_millis(500));
        assert_eq!(series.len(), 2);
        assert!((series[0].value - 10.0 / 0.5 / 1000.0).abs() < 1e-9);
        assert!((series[1].value - 4.0 / 0.5 / 1000.0).abs() < 1e-9);

        let lat_series = s.latency_timeseries(Duration::from_millis(500));
        assert_eq!(lat_series.len(), 2);
        assert!((lat_series[0].value - 0.4).abs() < 1e-9);
        assert!((lat_series[1].value - 0.9).abs() < 1e-9);
    }

    #[test]
    fn empty_collector_is_sane() {
        let s = StatsCollector::new();
        assert_eq!(s.confirmed_count(), 0);
        assert_eq!(s.average_latency(), Duration::ZERO);
        assert_eq!(s.throughput_ktps(), 0.0);
        assert!(s
            .throughput_timeseries(Duration::from_millis(500))
            .is_empty());
        assert!(s.latency_timeseries(Duration::from_millis(500)).is_empty());
        assert_eq!(s.latency_percentile(0.5), Duration::ZERO);
    }

    #[test]
    fn counters() {
        let mut s = StatsCollector::new();
        s.block_delivered();
        s.block_delivered();
        s.view_change_completed();
        assert_eq!(s.blocks_delivered, 2);
        assert_eq!(s.view_changes, 1);
    }

    #[test]
    fn glog_wait_accumulates() {
        let mut s = StatsCollector::new();
        assert_eq!(s.glog_wait_mean_us(), 0.0);
        s.glog_wait(Duration::from_micros(100));
        s.glog_wait(Duration::from_micros(300));
        assert_eq!(s.glog_wait_count, 2);
        assert_eq!(s.glog_wait_total_us, 400);
        assert_eq!(s.glog_wait_max_us, 300);
        assert_eq!(s.glog_wait_mean_us(), 200.0);
    }

    #[test]
    fn absorb_matches_interleaved_recording() {
        // Record the same facts (a) into one collector in engine order and
        // (b) split across two collectors merged afterwards; every read-side
        // aggregate must agree.
        let mut serial = StatsCollector::new();
        serial.tx_submitted(tx(0), at(5));
        serial.stage_reached(tx(0), LatencyStage::Send, at(10));
        serial.tx_confirmed(tx(0), at(40));
        serial.tx_confirmed(tx(0), at(90)); // late duplicate, first wins
        serial.tx_submitted(tx(1), at(7));
        serial.tx_aborted(tx(1), at(30));
        serial.block_delivered();
        serial.view_change_completed();
        serial.glog_wait(Duration::from_micros(50));
        serial.glog_wait(Duration::from_micros(20));

        let mut a = StatsCollector::new();
        let mut b = StatsCollector::new();
        a.tx_submitted(tx(0), at(5));
        b.stage_reached(tx(0), LatencyStage::Send, at(10));
        // The duplicate confirm lands in the *other* collector: min-merge
        // must still keep the earliest timestamp.
        b.tx_confirmed(tx(0), at(90));
        a.tx_confirmed(tx(0), at(40));
        b.tx_submitted(tx(1), at(7));
        a.tx_aborted(tx(1), at(30));
        a.block_delivered();
        b.view_change_completed();
        b.glog_wait(Duration::from_micros(50));
        a.glog_wait(Duration::from_micros(20));
        let mut merged = StatsCollector::new();
        merged.absorb(b);
        merged.absorb(a);

        assert_eq!(merged.confirmed_count(), serial.confirmed_count());
        assert_eq!(merged.aborted_count(), serial.aborted_count());
        assert_eq!(merged.average_latency(), serial.average_latency());
        assert_eq!(merged.blocks_delivered, serial.blocks_delivered);
        assert_eq!(merged.view_changes, serial.view_changes);
        assert_eq!(merged.glog_wait_total_us, serial.glog_wait_total_us);
        assert_eq!(merged.glog_wait_max_us, serial.glog_wait_max_us);
        assert_eq!(merged.latencies().len(), serial.latencies().len());
    }
}
