//! # orthrus-sim
//!
//! Deterministic discrete-event simulation substrate.
//!
//! The paper evaluates Orthrus on 8–128 AWS EC2 instances spread over four
//! regions. This crate replaces that testbed with a message-level simulation
//! that runs on a single machine while exercising exactly the same protocol
//! code paths:
//!
//! * [`node`] — node identifiers (replicas and clients) and the [`node::Payload`]
//!   trait that tells the network model how many bytes a message occupies.
//! * [`event`] — the virtual-time event queue.
//! * [`actor`] — the [`actor::Actor`] trait implemented by replicas and
//!   clients, and the [`actor::Context`] handed to them on every event.
//! * [`network`] — LAN and WAN latency models (4-region matrix), link
//!   bandwidth and per-message processing cost.
//! * [`faults`] — fault plans: crashes, stragglers (the paper's 10× slow
//!   instance), message drops and Byzantine flags.
//! * [`engine`] — the simulation loop that owns the actors, the clock and the
//!   network, delivers messages and fires timers deterministically.
//! * [`stats`] — measurement: per-transaction latency (end-to-end and per
//!   stage), throughput over time, delivered-block counters.
//!
//! Determinism: all randomness is drawn from `StdRng` streams seeded from the
//! scenario seed, and simultaneous events are ordered by insertion sequence,
//! so a given (scenario, seed) pair always produces the same trace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod engine;
pub mod event;
pub mod faults;
pub mod network;
pub mod node;
pub mod stats;

pub use actor::{Actor, Context, TimerId};
pub use engine::{Simulation, SimulationReport};
pub use event::{EventQueue, QueueKind};
pub use faults::{CrashRecoverSpec, FaultPlan, StragglerSpec};
pub use network::{NetworkConfig, Region};
pub use node::{NodeId, Payload};
pub use stats::{LatencyStage, StatsCollector, ThroughputPoint};
