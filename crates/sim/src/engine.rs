//! The discrete-event simulation engine.
//!
//! The engine owns the actors, the virtual clock, the event queue, the
//! network model and the fault plan. It repeatedly pops the earliest event,
//! advances the clock to its timestamp and dispatches it to the target actor;
//! messages the actor sends in response are run through the network model
//! (processing delay → NIC serialization with a per-sender queue →
//! propagation latency with jitter) and scheduled as future delivery events.
//!
//! The per-sender NIC queue is what reproduces the *leader bottleneck* that
//! motivates Multi-BFT consensus: a single-leader protocol funnels every
//! block through one NIC, while Multi-BFT spreads proposals over all
//! replicas.
//!
//! Multicasts are *coalesced*: an `n`-way [`Context::multicast`] occupies a
//! single [`EngineEvent::DeliverBatch`] queue entry carrying one message and
//! a per-recipient delivery plan (NIC serialization is still charged once per
//! copy, and per-link latency is sampled in deterministic recipient order at
//! send time). The batch dispatches each recipient exactly at its arrival
//! time and re-schedules itself for the next one, so the queue holds one
//! entry per in-flight broadcast instead of `n` — at 128 replicas this
//! shrinks the peak queue by roughly the fan-out.
//!
//! Coalescing preserves every per-recipient *arrival time* and the relative
//! order of a batch's own deliveries, but not the interleaving with
//! unrelated events at the exact same timestamp: the rescheduled remainder
//! carries a fresh insertion sequence, so a tie against another sender's
//! message may dispatch in a different order than the per-recipient path
//! would have. Runs remain fully deterministic for a given seed and
//! configuration — only the (arbitrary) tie-break between simultaneous
//! events differs between the two delivery strategies.

use crate::actor::{Actor, Context, Outbound, TimerId};
use crate::event::{EventQueue, QueueKind};
use crate::faults::FaultPlan;
use crate::network::NetworkConfig;
use crate::node::{NodeId, Payload};
use crate::stats::StatsCollector;
use orthrus_types::pool::parallel_for_mut;
use orthrus_types::rng::StdRng;
use orthrus_types::{Duration, ProfTimer, SimTime};
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};

/// Minimum number of predicted invocations in a lookahead window before the
/// parallel engine fans out lanes; smaller windows run serially (the fan-out
/// overhead would dominate). A pure function of queue state, so every thread
/// count takes the same path.
const MIN_PARALLEL_INVOCATIONS: usize = 8;

/// Internal events moved through the queue.
enum EngineEvent<M> {
    Start {
        node: NodeId,
    },
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    /// A coalesced multicast: one message, one queue entry, many recipients.
    /// `plan` is sorted by arrival time (ties keep recipient order) and
    /// `next` indexes the first undelivered recipient.
    DeliverBatch {
        from: NodeId,
        msg: M,
        plan: Vec<(SimTime, NodeId)>,
        next: usize,
    },
    Timer {
        node: NodeId,
        id: TimerId,
        tag: u64,
    },
    /// A crash-recover fault's restart instant: fire the actor's
    /// `on_recover` hook.
    Recover {
        node: NodeId,
    },
}

/// What a dispatched event asks of an actor.
enum Invocation<M> {
    Start,
    Message { from: NodeId, msg: M },
    Timer { tag: u64 },
    Recover,
}

/// Summary of a completed (or budget-limited) simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationReport {
    /// Virtual time when the run stopped.
    pub end_time: SimTime,
    /// Number of events dispatched.
    pub events_processed: u64,
    /// Number of protocol messages sent.
    pub messages_sent: u64,
    /// Number of protocol bytes sent.
    pub bytes_sent: u64,
    /// Largest number of events simultaneously waiting in the queue.
    pub peak_queue_len: u64,
}

/// Wall-clock profile of one lookahead window, recorded when
/// [`Simulation::set_engine_profiling`] is on. Serial fallback windows carry
/// all their time in `serial_ns` with `lanes == 0`. Samples never feed back
/// into virtual time; they exist for the work-span benchmark model.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowSample {
    /// Nanoseconds spent in the serial phases (window prediction plus barrier
    /// replay, or the entire window for a serial fallback).
    pub serial_ns: u64,
    /// Longest single lane execution — the parallel span.
    pub max_lane_ns: u64,
    /// Sum of all lane executions — the parallel work.
    pub sum_lane_ns: u64,
    /// Number of lanes fanned out.
    pub lanes: u32,
    /// Events dispatched in this window.
    pub invocations: u64,
}

/// The simulation: actors plus the virtual world they live in.
pub struct Simulation<M> {
    actors: HashMap<NodeId, Box<dyn Actor<M>>>,
    queue: EventQueue<EngineEvent<M>>,
    network: NetworkConfig,
    faults: FaultPlan,
    stats: StatsCollector,
    rngs: HashMap<NodeId, StdRng>,
    nic_free: HashMap<NodeId, SimTime>,
    /// Timers scheduled but not yet popped, keyed `(owner, per-node id)`.
    /// Entries leave on pop, so the set is bounded by in-flight timers.
    armed_timers: HashSet<(NodeId, u64)>,
    /// Armed timers that were cancelled. Entries leave when the timer's event
    /// pops (even if the node crashed meanwhile), so long runs do not leak.
    cancelled_timers: HashSet<(NodeId, u64)>,
    /// Per-node timer-id allocator. Ids are only ever compared within one
    /// node, so per-node streams keep allocation independent of the global
    /// event interleaving — which is what lets a lane allocate ids on a
    /// worker thread and still match the serial walk bit for bit.
    timer_seqs: HashMap<NodeId, u64>,
    now: SimTime,
    seed: u64,
    events_processed: u64,
    messages_sent: u64,
    bytes_sent: u64,
    max_events: u64,
    /// Conservative time-window parallel scheduler toggle (see
    /// `run_windows_until`). Gated on the *requested* thread count so a
    /// single-core host exercises the identical windowed code path.
    engine_parallel: bool,
    /// Worker budget for lane fan-out.
    intra_threads: usize,
    /// Collect [`WindowSample`]s.
    profile: bool,
    windows_parallel: u64,
    windows_serial: u64,
    window_samples: Vec<WindowSample>,
}

// `M: Clone` is required at the engine level (not just on `multicast`)
// because any actor may multicast and the coalesced batch clones the message
// per recipient at dispatch; the workspace's `Arc`-backed payload convention
// makes that a reference-count bump. `M: Send` lets the parallel engine move
// in-flight messages onto lane worker threads.
impl<M: Payload + Clone + Send + 'static> Simulation<M> {
    /// Create a simulation over the given network with no faults.
    pub fn new(network: NetworkConfig, seed: u64) -> Self {
        Self::with_faults(network, FaultPlan::none(), seed)
    }

    /// Create a simulation over the given network and fault plan, using the
    /// default (calendar) event queue.
    pub fn with_faults(network: NetworkConfig, faults: FaultPlan, seed: u64) -> Self {
        Self::with_queue(network, faults, seed, QueueKind::default())
    }

    /// Create a simulation with an explicit event-queue implementation. Both
    /// kinds produce bit-identical traces; differential tests drive both.
    pub fn with_queue(
        network: NetworkConfig,
        faults: FaultPlan,
        seed: u64,
        queue: QueueKind,
    ) -> Self {
        Self {
            actors: HashMap::new(),
            queue: EventQueue::with_kind(queue),
            network,
            faults,
            stats: StatsCollector::new(),
            rngs: HashMap::new(),
            nic_free: HashMap::new(),
            armed_timers: HashSet::new(),
            cancelled_timers: HashSet::new(),
            timer_seqs: HashMap::new(),
            now: SimTime::ZERO,
            seed,
            events_processed: 0,
            messages_sent: 0,
            bytes_sent: 0,
            max_events: u64::MAX,
            engine_parallel: false,
            intra_threads: 1,
            profile: false,
            windows_parallel: 0,
            windows_serial: 0,
            window_samples: Vec::new(),
        }
    }

    /// Switch the engine to the conservative time-window parallel scheduler
    /// with the given worker budget; `threads <= 1` keeps the serial walk.
    /// The parallel scheduler is bit-identical to the serial one at any
    /// thread count, faults included (fault windows fall back to serial).
    pub fn set_parallel_engine(&mut self, threads: usize) {
        self.intra_threads = threads.max(1);
        self.engine_parallel = threads > 1;
    }

    /// Record per-window wall-clock samples (serial vs lane time) for the
    /// work-span benchmark model. Off by default; never affects virtual time.
    pub fn set_engine_profiling(&mut self, on: bool) {
        self.profile = on;
    }

    /// Lookahead windows executed through parallel lanes.
    pub fn windows_parallel(&self) -> u64 {
        self.windows_parallel
    }

    /// Lookahead windows that fell back to the serial walk (fault hazard or
    /// too little independent work).
    pub fn windows_serial(&self) -> u64 {
        self.windows_serial
    }

    /// Per-window profiling samples (empty unless profiling is on).
    pub fn window_samples(&self) -> &[WindowSample] {
        &self.window_samples
    }

    /// Limit the total number of events the engine will dispatch (a safety
    /// valve against protocol livelock in tests).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Register an actor. Its `on_start` handler runs at the current virtual
    /// time once the simulation is (next) run. If the fault plan gives the
    /// node a crash-recover window, its restart (`on_recover`) is scheduled
    /// at the window's `recover_at`.
    pub fn add_actor(&mut self, id: NodeId, actor: Box<dyn Actor<M>>) {
        let mut hasher = orthrus_types::crypto::FnvHasher::default();
        id.hash(&mut hasher);
        let node_seed = self.seed ^ hasher.finish();
        // orthrus: allow(ambient-rng): per-node stream derived from the scenario seed XOR a stable node-id hash.
        self.rngs.insert(id, StdRng::seed_from_u64(node_seed));
        self.actors.insert(id, actor);
        self.queue
            .schedule(self.now, EngineEvent::Start { node: id });
        if let NodeId::Replica(replica) = id {
            if let Some(recovery) = self.faults.recovery_of(replica) {
                self.queue
                    .schedule(recovery.recover_at, EngineEvent::Recover { node: id });
            }
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The fault plan in force.
    #[inline]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The network configuration in force.
    #[inline]
    pub fn network(&self) -> &NetworkConfig {
        &self.network
    }

    /// Read access to the metrics collector.
    #[inline]
    pub fn stats(&self) -> &StatsCollector {
        &self.stats
    }

    /// Mutable access to the metrics collector (used by harnesses that feed
    /// in externally computed events).
    #[inline]
    pub fn stats_mut(&mut self) -> &mut StatsCollector {
        &mut self.stats
    }

    /// Look at an actor's final state, down-cast to its concrete type.
    pub fn actor_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.actors.get(&id).and_then(|a| a.as_any().downcast_ref())
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Run until the event queue drains or virtual time would exceed
    /// `deadline`, whichever comes first.
    pub fn run_until(&mut self, deadline: SimTime) -> SimulationReport {
        // The windowed scheduler does not track the `max_events` budget
        // mid-window, so budgeted runs (a test-only safety valve) always take
        // the serial walk.
        if self.engine_parallel && self.intra_threads > 1 && self.max_events == u64::MAX {
            self.run_windows_until(deadline);
        } else {
            while self.events_processed < self.max_events {
                match self.queue.pop_before(deadline) {
                    Ok((time, event)) => {
                        self.now = self.now.max(time);
                        self.dispatch(event);
                        self.events_processed += 1;
                    }
                    Err(_) => break,
                }
            }
        }
        // Even if no event landed exactly on the deadline, the run covers the
        // full interval (unless the caller asked for "run forever", in which
        // case the clock stays at the last event).
        if deadline.0 != u64::MAX && self.queue.peek_time().is_none_or(|t| t > deadline) {
            self.now = self.now.max(deadline);
        }
        self.report()
    }

    /// Run for an additional `span` of virtual time.
    pub fn run_for(&mut self, span: Duration) -> SimulationReport {
        let deadline = self.now + span;
        self.run_until(deadline)
    }

    /// Run until the event queue is completely drained.
    pub fn run_to_completion(&mut self) -> SimulationReport {
        self.run_until(SimTime(u64::MAX))
    }

    fn report(&self) -> SimulationReport {
        SimulationReport {
            end_time: self.now,
            events_processed: self.events_processed,
            messages_sent: self.messages_sent,
            bytes_sent: self.bytes_sent,
            peak_queue_len: self.queue.peak_len() as u64,
        }
    }

    fn node_crashed(&self, node: NodeId, at: SimTime) -> bool {
        match node {
            NodeId::Replica(r) => self.faults.is_crashed(r, at),
            NodeId::Client(_) => false,
        }
    }

    fn dispatch(&mut self, event: EngineEvent<M>) {
        match event {
            EngineEvent::Start { node } => self.invoke(node, Invocation::Start),
            EngineEvent::Deliver { from, to, msg } => {
                self.invoke(to, Invocation::Message { from, msg });
            }
            EngineEvent::DeliverBatch {
                from,
                msg,
                plan,
                next,
            } => self.dispatch_batch(from, msg, plan, next),
            EngineEvent::Timer { node, id, tag } => {
                // Retire the timer's bookkeeping unconditionally — before the
                // crash check inside `invoke` — so cancelled timers of
                // crashed nodes do not leak their tombstones.
                self.armed_timers.remove(&(node, id.0));
                if self.cancelled_timers.remove(&(node, id.0)) {
                    return;
                }
                self.invoke(node, Invocation::Timer { tag });
            }
            EngineEvent::Recover { node } => self.invoke(node, Invocation::Recover),
        }
    }

    /// Deliver the due prefix of a coalesced multicast, then re-schedule the
    /// remainder as the same single queue entry.
    fn dispatch_batch(&mut self, from: NodeId, msg: M, plan: Vec<(SimTime, NodeId)>, start: usize) {
        let mut due_end = start;
        while due_end < plan.len() && plan[due_end].0 <= self.now {
            due_end += 1;
        }
        // The pop that got us here counts as one event; tied arrivals beyond
        // the first still count individually so `events_processed` (and the
        // `max_events` livelock budget) track actor invocations, comparable
        // to the per-recipient path.
        self.events_processed += (due_end - start).saturating_sub(1) as u64;
        let mut msg = Some(msg);
        for (i, &(_, to)) in plan.iter().enumerate().take(due_end).skip(start) {
            let m = if i + 1 == plan.len() {
                msg.take()
                    // orthrus: allow(panic-path): only the final recipient takes the message; every earlier arm clones from the still-occupied Option.
                    .expect("batch message present until last recipient")
            } else {
                msg.as_ref()
                    // orthrus: allow(panic-path): the take() above only runs on the last plan index, so a shared borrow always finds the message.
                    .expect("batch message present until last recipient")
                    .clone()
            };
            self.invoke(to, Invocation::Message { from, msg: m });
        }
        if due_end < plan.len() {
            let at = plan[due_end].0;
            // orthrus: allow(panic-path): due_end < plan.len() means the last recipient has not consumed the message yet.
            let msg = msg.take().expect("undelivered batch keeps its message");
            self.queue.schedule(
                at,
                EngineEvent::DeliverBatch {
                    from,
                    msg,
                    plan,
                    next: due_end,
                },
            );
        }
    }

    /// Run one actor handler and apply everything it buffered: timers first
    /// (so a timer set and cancelled in the same handler resolves), then
    /// cancellations, then outbound messages through the network model.
    fn invoke(&mut self, node: NodeId, invocation: Invocation<M>) {
        if self.node_crashed(node, self.now) {
            return;
        }
        let Some(mut actor) = self.actors.remove(&node) else {
            return;
        };

        let mut outbox: Vec<Outbound<M>> = Vec::new();
        let mut timer_requests: Vec<(Duration, u64, TimerId)> = Vec::new();
        let mut cancel_requests: Vec<u64> = Vec::new();
        {
            let rng = self
                .rngs
                .get_mut(&node)
                // orthrus: allow(panic-path): add_actor installs the rng stream with the actor; the guard above already returned for unknown nodes.
                .expect("every actor has an rng stream");
            let mut ctx = Context {
                now: self.now,
                self_id: node,
                rng,
                stats: &mut self.stats,
                outbox: &mut outbox,
                timer_requests: &mut timer_requests,
                cancel_requests: &mut cancel_requests,
                next_timer_id: self.timer_seqs.entry(node).or_insert(0),
            };
            match invocation {
                Invocation::Start => actor.on_start(&mut ctx),
                Invocation::Message { from, msg } => actor.on_message(from, msg, &mut ctx),
                Invocation::Timer { tag } => actor.on_timer(tag, &mut ctx),
                Invocation::Recover => actor.on_recover(&mut ctx),
            }
        }
        self.actors.insert(node, actor);

        // Apply buffered timer requests.
        for (delay, tag, id) in timer_requests {
            self.armed_timers.insert((node, id.0));
            self.queue
                .schedule(self.now + delay, EngineEvent::Timer { node, id, tag });
        }
        // Apply buffered cancellations. Only a still-armed timer leaves a
        // tombstone; cancelling an already-fired handle is a true no-op, so
        // neither set can grow without bound.
        for id in cancel_requests {
            if self.armed_timers.remove(&(node, id)) {
                self.cancelled_timers.insert((node, id));
            }
        }
        // Resolve buffered sends through the network model (the exact code
        // path a parallel lane uses) and schedule the results.
        if !outbox.is_empty() {
            let emissions = {
                let rng = self
                    .rngs
                    .get_mut(&node)
                    // orthrus: allow(panic-path): same invariant as above — rng streams exist for every registered actor.
                    .expect("every actor has an rng stream");
                let mut sender = SenderState {
                    rng,
                    nic_free: self.nic_free.entry(node).or_insert(SimTime::ZERO),
                    stats: &mut self.stats,
                    messages_sent: &mut self.messages_sent,
                    bytes_sent: &mut self.bytes_sent,
                };
                resolve_outbox(
                    &self.network,
                    &self.faults,
                    self.now,
                    node,
                    outbox,
                    &mut sender,
                )
            };
            for emission in emissions {
                self.schedule_emission(emission);
            }
        }
    }

    /// Insert a fully resolved transmission into the queue.
    fn schedule_emission(&mut self, emission: ResolvedEmission<M>) {
        match emission {
            ResolvedEmission::Unicast { at, from, to, msg } => {
                self.queue
                    .schedule(at, EngineEvent::Deliver { from, to, msg });
            }
            ResolvedEmission::Batch { from, msg, plan } => {
                let first = plan[0].0;
                self.queue.schedule(
                    first,
                    EngineEvent::DeliverBatch {
                        from,
                        msg,
                        plan,
                        next: 0,
                    },
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Conservative time-window parallel scheduler.
//
// The network model guarantees every cross-node message takes at least
// `NetworkConfig::delivery_lookahead()` of virtual time to arrive. Events in
// the window `[t_min, t_min + lookahead)` therefore cannot influence each
// other across nodes: the engine can execute each node's events on its own
// *lane* (a worker thread owning the actor, its RNG stream, NIC state and
// timer-id allocator) and merge at a barrier. Three phases per window:
//
//  A. *Predict* (serial): drain the window's events from the queue without
//     touching any bookkeeping and walk them exactly as the serial
//     dispatcher would — batch unrolling included — to produce each lane's
//     invocation list.
//  B. *Execute* (parallel): every lane runs its handlers with virtual time
//     pinned to each invocation's timestamp, resolving sends immediately so
//     RNG draws happen in serial order. A lane that arms a timer or emits a
//     message landing *inside* the window stops there — such spawns can
//     interleave with later events in ways only the global walk orders, so
//     the tail is left to the replay's real execution path.
//  C. *Replay* (serial): restore the drained events and re-run the window's
//     queue bookkeeping — pops, sequence numbers, tombstones, batch
//     re-schedules, counters — applying each lane-executed invocation's
//     cached record instead of re-running its handler. Anything no lane
//     executed (stopped tails, actorless nodes, in-window spawns) runs for
//     real. The result is bit-identical to the serial walk at any thread
//     count; windows overlapping fault activity fall back to serial wholesale.
// ---------------------------------------------------------------------------

impl<M: Payload + Clone + Send + 'static> Simulation<M> {
    /// Drive the simulation to `deadline` in conservative lookahead windows.
    fn run_windows_until(&mut self, deadline: SimTime) {
        let lookahead = self.network.delivery_lookahead().as_micros().max(1);
        while let Some(t_min) = self.queue.peek_time() {
            if t_min > deadline {
                break;
            }
            // The window covers [t_min, end); `end` never reaches past the
            // deadline's last included microsecond.
            let cap = if deadline.0 == u64::MAX {
                u64::MAX
            } else {
                deadline.0.saturating_add(1)
            };
            let end = SimTime(t_min.0.saturating_add(lookahead).min(cap));
            if self.faults.parallel_hazard_in(t_min, end) {
                let started = ProfTimer::maybe(self.profile);
                let before = self.events_processed;
                self.run_serial_window(end);
                self.windows_serial += 1;
                self.sample_serial_window(started, before);
                continue;
            }
            self.run_window(end);
        }
    }

    /// Run every event strictly before `end` through the ordinary serial
    /// dispatcher.
    fn run_serial_window(&mut self, end: SimTime) {
        let below = SimTime(end.0 - 1);
        while let Ok((time, event)) = self.queue.pop_before(below) {
            self.now = self.now.max(time);
            self.dispatch(event);
            self.events_processed += 1;
        }
    }

    fn sample_serial_window(&mut self, started: ProfTimer, events_before: u64) {
        if started.active() {
            self.window_samples.push(WindowSample {
                serial_ns: started.elapsed_ns(),
                invocations: self.events_processed - events_before,
                ..WindowSample::default()
            });
        }
    }

    /// One conservative window `[t_min, end)`: predict, fan out, merge.
    fn run_window(&mut self, end: SimTime) {
        let plan_started = ProfTimer::maybe(self.profile);
        let events_before = self.events_processed;
        let drained = self.queue.drain_upto(end);
        let (planned, invocations) = self.plan_window(&drained, end);
        // Too little independent work to amortize a fan-out: put the events
        // back and walk them serially. The decision depends only on queue
        // state, so every thread count takes the same path.
        if planned.len() < 2 || invocations < MIN_PARALLEL_INVOCATIONS {
            self.queue.restore(drained);
            self.run_serial_window(end);
            self.windows_serial += 1;
            self.sample_serial_window(plan_started, events_before);
            return;
        }
        let mut lanes = self.make_lanes(planned);
        let plan_ns = plan_started.elapsed_ns();

        {
            let network = &self.network;
            let faults = &self.faults;
            let profile = self.profile;
            parallel_for_mut(&mut lanes, self.intra_threads, |lane| {
                run_lane(network, faults, end, lane, profile);
            });
        }

        let merge_started = ProfTimer::maybe(self.profile);
        let (mut max_lane_ns, mut sum_lane_ns) = (0u64, 0u64);
        let lane_count = lanes.len() as u32;
        if self.profile {
            for lane in &lanes {
                max_lane_ns = max_lane_ns.max(lane.wall_ns);
                sum_lane_ns += lane.wall_ns;
            }
        }
        let fifos = self.merge_lanes(lanes);
        self.queue.restore(drained);
        self.replay_window(end, fifos);
        self.windows_parallel += 1;
        if merge_started.active() {
            self.window_samples.push(WindowSample {
                serial_ns: plan_ns + merge_started.elapsed_ns(),
                max_lane_ns,
                sum_lane_ns,
                lanes: lane_count,
                invocations: self.events_processed - events_before,
            });
        }
    }

    /// Phase A: walk the drained window serially — without running handlers
    /// or touching engine bookkeeping — to predict which actor each event
    /// invokes and in what order. Batches are unrolled exactly as the serial
    /// dispatcher would, including remainder re-scheduling (simulated with
    /// pseudo-sequence numbers starting at the queue's next fresh sequence,
    /// which preserves the relative order the real re-schedules receive
    /// during replay: originals order before remainders at equal times, and
    /// remainders order among themselves by creation).
    #[allow(clippy::type_complexity)]
    fn plan_window(
        &self,
        drained: &[(SimTime, u64, EngineEvent<M>)],
        end: SimTime,
    ) -> (BTreeMap<NodeId, Vec<PlannedInv<M>>>, usize) {
        let mut planned: BTreeMap<NodeId, Vec<PlannedInv<M>>> = BTreeMap::new();
        let mut count = 0usize;
        let mut scratch: BinaryHeap<ScratchEntry<M>> = BinaryHeap::new();
        let mut pseudo_seq = self.queue.next_seq();
        let mut originals = drained.iter().peekable();
        loop {
            let take_scratch = match (originals.peek(), scratch.peek()) {
                (None, None) => break,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some(&&(time, seq, _)), Some(s)) => (s.time, s.seq) < (time, seq),
            };
            if take_scratch {
                // orthrus: allow(panic-path): take_scratch is only true when scratch.peek() returned Some in the match above.
                let mut s = scratch.pop().expect("peeked entry exists");
                let mut due_end = s.next;
                while due_end < s.plan.len() && s.plan[due_end].0 <= s.time {
                    due_end += 1;
                }
                for &(_, to) in &s.plan[s.next..due_end] {
                    self.push_planned(
                        &mut planned,
                        &mut count,
                        to,
                        s.time,
                        LaneInvocation::Message {
                            from: s.from,
                            msg: s.msg.clone(),
                        },
                    );
                }
                if due_end < s.plan.len() && s.plan[due_end].0 < end {
                    s.time = s.plan[due_end].0;
                    s.seq = pseudo_seq;
                    pseudo_seq += 1;
                    s.next = due_end;
                    scratch.push(s);
                }
                // A remainder at or beyond `end` is dropped here: the replay
                // re-schedules it for real when the batch event pops.
                continue;
            }
            // orthrus: allow(panic-path): this branch is only reached when originals.peek() returned Some in the match above.
            let &(time, _seq, ref event) = originals.next().expect("peeked entry exists");
            match event {
                EngineEvent::Start { node } => {
                    self.push_planned(&mut planned, &mut count, *node, time, LaneInvocation::Start);
                }
                EngineEvent::Deliver { from, to, msg } => {
                    self.push_planned(
                        &mut planned,
                        &mut count,
                        *to,
                        time,
                        LaneInvocation::Message {
                            from: *from,
                            msg: msg.clone(),
                        },
                    );
                }
                EngineEvent::DeliverBatch {
                    from,
                    msg,
                    plan,
                    next,
                } => {
                    let mut due_end = *next;
                    while due_end < plan.len() && plan[due_end].0 <= time {
                        due_end += 1;
                    }
                    for &(_, to) in &plan[*next..due_end] {
                        self.push_planned(
                            &mut planned,
                            &mut count,
                            to,
                            time,
                            LaneInvocation::Message {
                                from: *from,
                                msg: msg.clone(),
                            },
                        );
                    }
                    if due_end < plan.len() && plan[due_end].0 < end {
                        scratch.push(ScratchEntry {
                            time: plan[due_end].0,
                            seq: pseudo_seq,
                            from: *from,
                            msg: msg.clone(),
                            plan: plan.clone(),
                            next: due_end,
                        });
                        pseudo_seq += 1;
                    }
                }
                EngineEvent::Timer { node, id, tag } => {
                    // A pre-window tombstone means the serial walk would skip
                    // this timer before reaching the actor; the replay's real
                    // tombstone check does the same, so no lane record may
                    // exist for it.
                    if !self.cancelled_timers.contains(&(*node, id.0)) {
                        self.push_planned(
                            &mut planned,
                            &mut count,
                            *node,
                            time,
                            LaneInvocation::Timer { id: *id, tag: *tag },
                        );
                    }
                }
                EngineEvent::Recover { node } => {
                    self.push_planned(
                        &mut planned,
                        &mut count,
                        *node,
                        time,
                        LaneInvocation::Recover,
                    );
                }
            }
        }
        (planned, count)
    }

    /// Assign one predicted invocation to a lane. Nodes without a registered
    /// actor get no lane — the replay's real path no-ops them, as the serial
    /// walk would.
    fn push_planned(
        &self,
        planned: &mut BTreeMap<NodeId, Vec<PlannedInv<M>>>,
        count: &mut usize,
        node: NodeId,
        time: SimTime,
        inv: LaneInvocation<M>,
    ) {
        if !self.actors.contains_key(&node) {
            return;
        }
        planned
            .entry(node)
            .or_default()
            .push(PlannedInv { time, inv });
        *count += 1;
    }

    /// Phase B setup: move each planned actor and its private simulation
    /// state out of the engine into a lane task. The planner map is a
    /// `BTreeMap`, so lanes come out sorted by node id and the fan-out order
    /// is deterministic by construction (the merge is order-insensitive, but
    /// determinism is cheap).
    fn make_lanes(&mut self, planned: BTreeMap<NodeId, Vec<PlannedInv<M>>>) -> Vec<LaneTask<M>> {
        planned
            .into_iter()
            .map(|(node, pending)| LaneTask {
                node,
                actor: self
                    .actors
                    .remove(&node)
                    // orthrus: allow(panic-path): plan_window only plans invocations for registered actors; a miss is an engine bug, not a recoverable schedule state.
                    .expect("planned lanes have actors"),
                rng: self
                    .rngs
                    .remove(&node)
                    // orthrus: allow(panic-path): add_actor seeds an rng stream alongside every actor; the two maps share a key set by construction.
                    .expect("every actor has an rng stream"),
                nic_free: self.nic_free.get(&node).copied().unwrap_or(SimTime::ZERO),
                timer_seq: self.timer_seqs.get(&node).copied().unwrap_or(0),
                pending,
                records: Vec::new(),
                stats: StatsCollector::new(),
                messages_sent: 0,
                bytes_sent: 0,
                wall_ns: 0,
            })
            .collect()
    }

    /// Phase C setup: move every lane's state back into the engine and build
    /// the per-node record FIFOs the barrier replay consumes. Stats merging
    /// is commutative (first-write-wins timestamps become min-merges), so
    /// lane order cannot leak into results.
    fn merge_lanes(
        &mut self,
        lanes: Vec<LaneTask<M>>,
    ) -> BTreeMap<NodeId, VecDeque<InvocationRecord<M>>> {
        let mut fifos = BTreeMap::new();
        for lane in lanes {
            self.actors.insert(lane.node, lane.actor);
            self.rngs.insert(lane.node, lane.rng);
            self.nic_free.insert(lane.node, lane.nic_free);
            self.timer_seqs.insert(lane.node, lane.timer_seq);
            self.messages_sent += lane.messages_sent;
            self.bytes_sent += lane.bytes_sent;
            self.stats.absorb(lane.stats);
            fifos.insert(lane.node, VecDeque::from(lane.records));
        }
        fifos
    }

    /// Phase C: the barrier replay. Re-run the window's queue bookkeeping —
    /// pops, sequence numbers, timer tombstones, batch re-schedules, event
    /// and peak-queue counters — exactly as the serial walk would, applying
    /// each lane-executed invocation's cached record instead of re-running
    /// its handler.
    fn replay_window(
        &mut self,
        end: SimTime,
        mut fifos: BTreeMap<NodeId, VecDeque<InvocationRecord<M>>>,
    ) {
        let below = SimTime(end.0 - 1);
        while let Ok((time, event)) = self.queue.pop_before(below) {
            self.now = self.now.max(time);
            self.dispatch_replay(event, &mut fifos);
            self.events_processed += 1;
        }
        assert!(
            fifos.values().all(VecDeque::is_empty),
            "parallel window left unconsumed lane records"
        );
    }

    fn dispatch_replay(
        &mut self,
        event: EngineEvent<M>,
        fifos: &mut BTreeMap<NodeId, VecDeque<InvocationRecord<M>>>,
    ) {
        match event {
            EngineEvent::Start { node } => {
                self.replay_invoke(node, RecordKind::Start, Invocation::Start, fifos);
            }
            EngineEvent::Deliver { from, to, msg } => {
                self.replay_invoke(
                    to,
                    RecordKind::Message,
                    Invocation::Message { from, msg },
                    fifos,
                );
            }
            EngineEvent::DeliverBatch {
                from,
                msg,
                plan,
                next,
            } => self.dispatch_batch_replay(from, msg, plan, next, fifos),
            EngineEvent::Timer { node, id, tag } => {
                self.armed_timers.remove(&(node, id.0));
                if self.cancelled_timers.remove(&(node, id.0)) {
                    return;
                }
                self.replay_invoke(node, RecordKind::Timer, Invocation::Timer { tag }, fifos);
            }
            EngineEvent::Recover { node } => {
                self.replay_invoke(node, RecordKind::Recover, Invocation::Recover, fifos);
            }
        }
    }

    /// Replay twin of `dispatch_batch`: identical due-prefix, event-count and
    /// re-schedule logic, with deliveries routed through the record FIFOs.
    fn dispatch_batch_replay(
        &mut self,
        from: NodeId,
        msg: M,
        plan: Vec<(SimTime, NodeId)>,
        start: usize,
        fifos: &mut BTreeMap<NodeId, VecDeque<InvocationRecord<M>>>,
    ) {
        let mut due_end = start;
        while due_end < plan.len() && plan[due_end].0 <= self.now {
            due_end += 1;
        }
        self.events_processed += (due_end - start).saturating_sub(1) as u64;
        let mut msg = Some(msg);
        for (i, &(_, to)) in plan.iter().enumerate().take(due_end).skip(start) {
            let m = if i + 1 == plan.len() {
                msg.take()
                    // orthrus: allow(panic-path): mirror of dispatch_batch — only the final recipient takes the message.
                    .expect("batch message present until last recipient")
            } else {
                msg.as_ref()
                    // orthrus: allow(panic-path): mirror of dispatch_batch — earlier arms clone from the still-occupied Option.
                    .expect("batch message present until last recipient")
                    .clone()
            };
            self.replay_invoke(
                to,
                RecordKind::Message,
                Invocation::Message { from, msg: m },
                fifos,
            );
        }
        if due_end < plan.len() {
            let at = plan[due_end].0;
            // orthrus: allow(panic-path): mirror of dispatch_batch — due_end < plan.len() means the message was not consumed.
            let msg = msg.take().expect("undelivered batch keeps its message");
            self.queue.schedule(
                at,
                EngineEvent::DeliverBatch {
                    from,
                    msg,
                    plan,
                    next: due_end,
                },
            );
        }
    }

    /// Apply the lane's cached record for this invocation, or fall back to
    /// real execution for work no lane performed (stopped-lane tails,
    /// actorless nodes, in-window spawns — whose lanes are guaranteed to have
    /// exhausted their FIFOs, because spawns only come from real execution).
    fn replay_invoke(
        &mut self,
        node: NodeId,
        kind: RecordKind,
        invocation: Invocation<M>,
        fifos: &mut BTreeMap<NodeId, VecDeque<InvocationRecord<M>>>,
    ) {
        if self.node_crashed(node, self.now) {
            return;
        }
        if let Some(front) = fifos.get_mut(&node).and_then(VecDeque::pop_front) {
            assert!(
                front.time == self.now && front.kind == kind,
                "lane record misaligned at {node}: recorded ({:?}, {:?}), replaying ({:?}, {kind:?})",
                front.time,
                front.kind,
                self.now,
            );
            self.apply_record(node, front);
            return;
        }
        self.invoke(node, invocation);
    }

    /// Apply a lane-executed invocation's side effects with real engine
    /// bookkeeping. The handler already ran on the lane — its state changes,
    /// stats, wire counters and RNG draws were merged at the barrier — so
    /// only the queue-facing effects happen here, in exactly the order the
    /// serial walk applies them (timers, then cancels, then emissions).
    fn apply_record(&mut self, node: NodeId, rec: InvocationRecord<M>) {
        for (fire_at, id, tag) in rec.timers {
            self.armed_timers.insert((node, id.0));
            self.queue
                .schedule(fire_at, EngineEvent::Timer { node, id, tag });
        }
        for id in rec.cancels {
            if self.armed_timers.remove(&(node, id)) {
                self.cancelled_timers.insert((node, id));
            }
        }
        for emission in rec.emissions {
            self.schedule_emission(emission);
        }
    }
}

/// Mutable sender-side state threaded through network resolution. The same
/// code path computes delivery schedules for the serial engine (borrowing
/// the engine's own maps) and for a parallel lane (borrowing the lane's
/// local copies), so the two cannot drift apart.
struct SenderState<'a> {
    rng: &'a mut StdRng,
    nic_free: &'a mut SimTime,
    stats: &'a mut StatsCollector,
    messages_sent: &'a mut u64,
    bytes_sent: &'a mut u64,
}

impl SenderState<'_> {
    /// Count `copies` sends of `bytes` each in the wire statistics.
    fn charge(&mut self, bytes: u64, copies: u64) {
        *self.messages_sent += copies;
        *self.bytes_sent += bytes * copies;
        self.stats.messages_sent += copies;
        self.stats.bytes_sent += bytes * copies;
    }
}

/// A fully resolved transmission: every arrival time fixed, every RNG draw
/// made. Scheduling it is a pure queue insertion, so lanes resolve their
/// sends in parallel and the barrier replay inserts them bit-identically.
enum ResolvedEmission<M> {
    Unicast {
        at: SimTime,
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    /// `plan` is sorted by arrival (ties keep recipient order) and non-empty.
    Batch {
        from: NodeId,
        msg: M,
        plan: Vec<(SimTime, NodeId)>,
    },
}

impl<M> ResolvedEmission<M> {
    /// Earliest instant any copy of this emission is delivered.
    fn earliest(&self) -> SimTime {
        match self {
            ResolvedEmission::Unicast { at, .. } => *at,
            ResolvedEmission::Batch { plan, .. } => plan[0].0,
        }
    }
}

fn slowdown_of(faults: &FaultPlan, node: NodeId) -> f64 {
    match node {
        NodeId::Replica(r) => faults.slowdown(r),
        NodeId::Client(_) => 1.0,
    }
}

/// When the sender's NIC can start serializing the next message of `bytes`,
/// and how long one copy takes on the wire.
fn nic_slot(
    network: &NetworkConfig,
    now: SimTime,
    nic_free: SimTime,
    bytes: u64,
    slow_from: f64,
) -> (SimTime, Duration) {
    let processing = network.processing_per_message.mul_f64(slow_from);
    let ready = now + processing;
    let serialization = network.serialization_delay(bytes).mul_f64(slow_from);
    let start = if nic_free > ready { nic_free } else { ready };
    (start, serialization)
}

/// Arrival time at `to` of a copy whose NIC serialization finished at
/// `done`: jittered per-link propagation (drawn from the sender's RNG
/// stream) plus receiver-side processing. Unicast and multicast both charge
/// copies through here, so their arrival math cannot diverge.
#[allow(clippy::too_many_arguments)]
fn copy_arrival(
    network: &NetworkConfig,
    faults: &FaultPlan,
    from: NodeId,
    to: NodeId,
    done: SimTime,
    slow_from: f64,
    rng: &mut StdRng,
) -> SimTime {
    let propagation = network.sample_latency(from, to, rng).mul_f64(slow_from);
    let recv_processing = network
        .processing_per_message
        .mul_f64(slowdown_of(faults, to));
    done + propagation + recv_processing
}

#[allow(clippy::too_many_arguments)]
fn resolve_unicast<M: Payload>(
    network: &NetworkConfig,
    faults: &FaultPlan,
    now: SimTime,
    from: NodeId,
    to: NodeId,
    msg: M,
    slow_from: f64,
    sender: &mut SenderState<'_>,
) -> ResolvedEmission<M> {
    let bytes = msg.wire_bytes();
    sender.charge(bytes, 1);
    // Per-sender NIC: messages serialize one after another.
    let (start, serialization) = nic_slot(network, now, *sender.nic_free, bytes, slow_from);
    let done = start + serialization;
    *sender.nic_free = done;
    let at = copy_arrival(network, faults, from, to, done, slow_from, sender.rng);
    ResolvedEmission::Unicast { at, from, to, msg }
}

/// Coalesce an `n`-way multicast into one queue entry. The network model is
/// charged exactly as for `n` unicasts — per-message stats, one NIC
/// serialization slot per copy, per-link jittered propagation sampled in
/// recipient order — but the queue carries a single `DeliverBatch`.
#[allow(clippy::too_many_arguments)]
fn resolve_multicast<M: Payload>(
    network: &NetworkConfig,
    faults: &FaultPlan,
    now: SimTime,
    from: NodeId,
    recipients: Vec<NodeId>,
    msg: M,
    slow_from: f64,
    sender: &mut SenderState<'_>,
) -> ResolvedEmission<M> {
    if recipients.len() == 1 {
        let to = recipients[0];
        return resolve_unicast(network, faults, now, from, to, msg, slow_from, sender);
    }
    let bytes = msg.wire_bytes();
    sender.charge(bytes, recipients.len() as u64);
    let (start, serialization) = nic_slot(network, now, *sender.nic_free, bytes, slow_from);

    let mut plan: Vec<(SimTime, NodeId)> = Vec::with_capacity(recipients.len());
    let mut done = start;
    for to in recipients {
        // The sender's NIC still serializes one copy per recipient.
        done += serialization;
        let arrival = copy_arrival(network, faults, from, to, done, slow_from, sender.rng);
        plan.push((arrival, to));
    }
    *sender.nic_free = done;

    // Stable sort: equal arrivals keep recipient order, matching the seq
    // tie-break the per-recipient path would have produced.
    plan.sort_by_key(|&(at, _)| at);
    ResolvedEmission::Batch { from, msg, plan }
}

/// Resolve every buffered send of one invocation through the network model.
fn resolve_outbox<M: Payload>(
    network: &NetworkConfig,
    faults: &FaultPlan,
    now: SimTime,
    from: NodeId,
    outbox: Vec<Outbound<M>>,
    sender: &mut SenderState<'_>,
) -> Vec<ResolvedEmission<M>> {
    let slow_from = slowdown_of(faults, from);
    let mut out = Vec::with_capacity(outbox.len());
    for item in outbox {
        out.push(match item {
            Outbound::One(to, msg) => {
                resolve_unicast(network, faults, now, from, to, msg, slow_from, sender)
            }
            Outbound::Many(recipients, msg) => resolve_multicast(
                network, faults, now, from, recipients, msg, slow_from, sender,
            ),
        });
    }
    out
}

/// One predicted actor invocation inside a lookahead window (phase A output).
struct PlannedInv<M> {
    time: SimTime,
    inv: LaneInvocation<M>,
}

/// Lane-executable invocation kinds. Mirrors [`Invocation`] but carries the
/// timer id so a lane can honour in-window cancellations.
enum LaneInvocation<M> {
    Start,
    Message { from: NodeId, msg: M },
    Timer { id: TimerId, tag: u64 },
    Recover,
}

/// Which event kind produced a record — asserted against the replayed queue
/// to pin lane/serial alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecordKind {
    Start,
    Message,
    Timer,
    Recover,
}

/// Everything one lane-executed invocation did, applied verbatim at the
/// barrier replay: timers to arm (absolute fire times), cancellations, and
/// fully resolved emissions. The handler itself does not re-run.
struct InvocationRecord<M> {
    time: SimTime,
    kind: RecordKind,
    timers: Vec<(SimTime, TimerId, u64)>,
    cancels: Vec<u64>,
    emissions: Vec<ResolvedEmission<M>>,
}

/// A per-actor work packet for one lookahead window: the actor plus its
/// private simulation state (RNG stream, NIC availability, timer-id
/// allocator) moves onto a worker thread, executes its predicted
/// invocations, and the outcome merges back at the barrier.
struct LaneTask<M> {
    node: NodeId,
    actor: Box<dyn Actor<M>>,
    rng: StdRng,
    nic_free: SimTime,
    timer_seq: u64,
    pending: Vec<PlannedInv<M>>,
    records: Vec<InvocationRecord<M>>,
    stats: StatsCollector,
    messages_sent: u64,
    bytes_sent: u64,
    wall_ns: u64,
}

/// A batch remainder re-scheduled during window *prediction*. Pseudo-seqs
/// start at the queue's next fresh sequence number, so remainders order
/// after every drained original and among themselves in creation order —
/// the relative order the real re-schedules receive during replay.
struct ScratchEntry<M> {
    time: SimTime,
    seq: u64,
    from: NodeId,
    msg: M,
    plan: Vec<(SimTime, NodeId)>,
    next: usize,
}

impl<M> PartialEq for ScratchEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl<M> Eq for ScratchEntry<M> {}
impl<M> PartialOrd for ScratchEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for ScratchEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest entry pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Execute one lane's predicted invocations (phase B, on a worker thread).
///
/// Stops early — leaving the tail to the barrier replay's real execution
/// path — as soon as an invocation arms a timer or resolves an emission
/// landing *inside* the window: such spawns interleave with later events in
/// ways only the global serial walk orders. Cross-node sends always land at
/// or beyond the window end (that is what the lookahead guarantees), so a
/// stop is only ever triggered by self-sends and short timers.
fn run_lane<M: Payload + Clone + Send + 'static>(
    network: &NetworkConfig,
    faults: &FaultPlan,
    window_end: SimTime,
    lane: &mut LaneTask<M>,
    profile: bool,
) {
    let started = ProfTimer::maybe(profile);
    // Ids of timers this lane cancelled. A pending in-window timer invocation
    // with a matching id is skipped without a record: the replay applies the
    // recorded cancel for real, so its tombstone check skips the pop too.
    let mut cancelled_pending: HashSet<u64> = HashSet::new();
    let pending = std::mem::take(&mut lane.pending);
    for planned in pending {
        let mut outbox: Vec<Outbound<M>> = Vec::new();
        let mut timer_requests: Vec<(Duration, u64, TimerId)> = Vec::new();
        let mut cancel_requests: Vec<u64> = Vec::new();
        let kind;
        {
            let mut ctx = Context {
                now: planned.time,
                self_id: lane.node,
                rng: &mut lane.rng,
                stats: &mut lane.stats,
                outbox: &mut outbox,
                timer_requests: &mut timer_requests,
                cancel_requests: &mut cancel_requests,
                next_timer_id: &mut lane.timer_seq,
            };
            match planned.inv {
                LaneInvocation::Start => {
                    lane.actor.on_start(&mut ctx);
                    kind = RecordKind::Start;
                }
                LaneInvocation::Message { from, msg } => {
                    lane.actor.on_message(from, msg, &mut ctx);
                    kind = RecordKind::Message;
                }
                LaneInvocation::Timer { id, tag } => {
                    if cancelled_pending.contains(&id.0) {
                        continue;
                    }
                    lane.actor.on_timer(tag, &mut ctx);
                    kind = RecordKind::Timer;
                }
                LaneInvocation::Recover => {
                    lane.actor.on_recover(&mut ctx);
                    kind = RecordKind::Recover;
                }
            }
        }
        let mut stop = false;
        let timers: Vec<(SimTime, TimerId, u64)> = timer_requests
            .into_iter()
            .map(|(delay, tag, id)| {
                let fire_at = planned.time + delay;
                if fire_at < window_end {
                    stop = true;
                }
                (fire_at, id, tag)
            })
            .collect();
        cancelled_pending.extend(cancel_requests.iter().copied());
        let emissions = {
            let mut sender = SenderState {
                rng: &mut lane.rng,
                nic_free: &mut lane.nic_free,
                stats: &mut lane.stats,
                messages_sent: &mut lane.messages_sent,
                bytes_sent: &mut lane.bytes_sent,
            };
            resolve_outbox(
                network,
                faults,
                planned.time,
                lane.node,
                outbox,
                &mut sender,
            )
        };
        if emissions.iter().any(|e| e.earliest() < window_end) {
            stop = true;
        }
        lane.records.push(InvocationRecord {
            time: planned.time,
            kind,
            timers,
            cancels: cancel_requests,
            emissions,
        });
        if stop {
            break;
        }
    }
    if started.active() {
        lane.wall_ns = started.elapsed_ns();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::ReplicaId;
    use std::any::Any;

    /// A message carrying a hop counter, used to bounce between two actors.
    #[derive(Clone)]
    struct Ping {
        hops: u32,
        bytes: u64,
    }

    impl Payload for Ping {
        fn wire_bytes(&self) -> u64 {
            self.bytes
        }
    }

    /// Bounces every ping back until `hops` reaches a limit and records the
    /// arrival times.
    struct Bouncer {
        peer: NodeId,
        limit: u32,
        arrivals: Vec<SimTime>,
        timer_fired: u32,
        start_pings: bool,
    }

    impl Actor<Ping> for Bouncer {
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            if self.start_pings {
                ctx.send(
                    self.peer,
                    Ping {
                        hops: 0,
                        bytes: 100,
                    },
                );
            }
        }

        fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<'_, Ping>) {
            self.arrivals.push(ctx.now());
            if msg.hops < self.limit {
                ctx.send(
                    from,
                    Ping {
                        hops: msg.hops + 1,
                        bytes: msg.bytes,
                    },
                );
            }
        }

        fn on_timer(&mut self, _tag: u64, _ctx: &mut Context<'_, Ping>) {
            self.timer_fired += 1;
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn bouncer(peer: NodeId, start: bool) -> Box<Bouncer> {
        Box::new(Bouncer {
            peer,
            limit: 4,
            arrivals: Vec::new(),
            timer_fired: 0,
            start_pings: start,
        })
    }

    #[test]
    fn ping_pong_advances_virtual_time() {
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::lan(), 42);
        let a = NodeId::replica(0);
        let b = NodeId::replica(1);
        sim.add_actor(a, bouncer(b, true));
        sim.add_actor(b, bouncer(a, false));
        let report = sim.run_to_completion();
        // 5 deliveries total (hops 0..=4), alternating between b and a.
        let a_state: &Bouncer = sim.actor_as(a).unwrap();
        let b_state: &Bouncer = sim.actor_as(b).unwrap();
        assert_eq!(a_state.arrivals.len() + b_state.arrivals.len(), 5);
        assert!(report.end_time > SimTime::ZERO);
        assert_eq!(report.messages_sent, 5);
        assert!(report.bytes_sent >= 500);
        assert!(report.peak_queue_len >= 1);
        // Arrival times strictly increase across the exchange.
        let mut all: Vec<SimTime> = a_state
            .arrivals
            .iter()
            .chain(b_state.arrivals.iter())
            .copied()
            .collect();
        let sorted = {
            let mut s = all.clone();
            s.sort_unstable();
            s
        };
        all.sort_unstable();
        assert_eq!(all, sorted);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed: u64| {
            let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::wan(), seed);
            let a = NodeId::replica(0);
            let b = NodeId::replica(3);
            sim.add_actor(a, bouncer(b, true));
            sim.add_actor(b, bouncer(a, false));
            sim.run_to_completion().end_time
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn heap_and_calendar_queues_produce_identical_reports() {
        let run = |kind: QueueKind| {
            let mut sim: Simulation<Ping> =
                Simulation::with_queue(NetworkConfig::wan(), FaultPlan::none(), 7, kind);
            let a = NodeId::replica(0);
            let b = NodeId::replica(3);
            sim.add_actor(a, bouncer(b, true));
            sim.add_actor(b, bouncer(a, false));
            sim.run_to_completion()
        };
        assert_eq!(run(QueueKind::Heap), run(QueueKind::Calendar));
    }

    #[test]
    fn straggler_slows_down_its_messages() {
        let run = |faults: FaultPlan| {
            let mut sim: Simulation<Ping> =
                Simulation::with_faults(NetworkConfig::wan(), faults, 1);
            let a = NodeId::replica(0);
            let b = NodeId::replica(1);
            sim.add_actor(a, bouncer(b, true));
            sim.add_actor(b, bouncer(a, false));
            sim.run_to_completion().end_time
        };
        let normal = run(FaultPlan::none());
        let slow = run(FaultPlan::one_straggler(ReplicaId::new(0)));
        assert!(slow > normal);
        // Half the hops originate at the straggler, so the end-to-end time
        // should be substantially (though not 10x) larger.
        assert!(slow.as_micros() as f64 > normal.as_micros() as f64 * 3.0);
    }

    #[test]
    fn crashed_nodes_go_silent() {
        let faults = FaultPlan::none().with_crash(ReplicaId::new(1), SimTime::ZERO);
        let mut sim: Simulation<Ping> = Simulation::with_faults(NetworkConfig::lan(), faults, 1);
        let a = NodeId::replica(0);
        let b = NodeId::replica(1);
        sim.add_actor(a, bouncer(b, true));
        sim.add_actor(b, bouncer(a, false));
        sim.run_to_completion();
        let b_state: &Bouncer = sim.actor_as(b).unwrap();
        // The crashed node never processed anything.
        assert!(b_state.arrivals.is_empty());
    }

    /// A node that records recovery firings and answers pings afterwards.
    struct Phoenix {
        arrivals: Vec<SimTime>,
        recovered_at: Option<SimTime>,
    }
    impl Actor<Ping> for Phoenix {
        fn on_message(&mut self, _f: NodeId, _m: Ping, ctx: &mut Context<'_, Ping>) {
            self.arrivals.push(ctx.now());
        }
        fn on_recover(&mut self, ctx: &mut Context<'_, Ping>) {
            self.recovered_at = Some(ctx.now());
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Sends one ping at every timer tick so traffic spans the crash window.
    struct Ticker {
        peer: NodeId,
        remaining: u32,
    }
    impl Actor<Ping> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.set_timer(Duration::from_millis(100), 0);
        }
        fn on_message(&mut self, _f: NodeId, _m: Ping, _c: &mut Context<'_, Ping>) {}
        fn on_timer(&mut self, _tag: u64, ctx: &mut Context<'_, Ping>) {
            ctx.send(self.peer, Ping { hops: 0, bytes: 64 });
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.set_timer(Duration::from_millis(100), 0);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn crash_recover_node_goes_silent_then_resumes() {
        let crash_at = SimTime::from_millis(250);
        let recover_at = SimTime::from_millis(650);
        let faults = FaultPlan::none().with_crash_recover(ReplicaId::new(1), crash_at, recover_at);
        let mut sim: Simulation<Ping> = Simulation::with_faults(NetworkConfig::lan(), faults, 9);
        let target = NodeId::replica(1);
        sim.add_actor(
            NodeId::replica(0),
            Box::new(Ticker {
                peer: target,
                remaining: 10,
            }),
        );
        sim.add_actor(
            target,
            Box::new(Phoenix {
                arrivals: Vec::new(),
                recovered_at: None,
            }),
        );
        sim.run_to_completion();
        let phoenix: &Phoenix = sim.actor_as(target).unwrap();
        assert_eq!(phoenix.recovered_at, Some(recover_at));
        // Pings sent at ~100/200 ms arrive; those landing in the crash window
        // are dropped; ticks after recovery arrive again.
        assert!(phoenix.arrivals.iter().any(|t| *t < crash_at));
        assert!(phoenix
            .arrivals
            .iter()
            .all(|t| *t < crash_at || *t >= recover_at));
        assert!(phoenix.arrivals.iter().any(|t| *t >= recover_at));
    }

    #[test]
    fn run_until_respects_the_deadline() {
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::wan(), 11);
        let a = NodeId::replica(0);
        let b = NodeId::replica(2);
        sim.add_actor(a, bouncer(b, true));
        sim.add_actor(b, bouncer(a, false));
        let deadline = SimTime::from_millis(100);
        let report = sim.run_until(deadline);
        assert!(report.end_time <= SimTime::from_millis(100) || report.end_time == deadline);
        // Continuing afterwards processes the rest.
        let final_report = sim.run_to_completion();
        assert!(final_report.events_processed >= report.events_processed);
    }

    /// Actor used to test timers and cancellation.
    struct TimerUser {
        fired: Vec<u64>,
        cancel_second: bool,
    }

    impl Actor<Ping> for TimerUser {
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.set_timer(Duration::from_millis(10), 1);
            let second = ctx.set_timer(Duration::from_millis(20), 2);
            if self.cancel_second {
                ctx.cancel_timer(second);
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: Ping, _ctx: &mut Context<'_, Ping>) {}
        fn on_timer(&mut self, tag: u64, _ctx: &mut Context<'_, Ping>) {
            self.fired.push(tag);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn timers_fire_and_cancel() {
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::lan(), 3);
        let n = NodeId::replica(0);
        sim.add_actor(
            n,
            Box::new(TimerUser {
                fired: Vec::new(),
                cancel_second: true,
            }),
        );
        sim.run_to_completion();
        let state: &TimerUser = sim.actor_as(n).unwrap();
        assert_eq!(state.fired, vec![1]);
    }

    /// Regression test for the cancelled-timer leak: tombstones must not
    /// survive the timer's pop, cancelling an already-fired timer must not
    /// create one, and crashed nodes must not pin theirs forever.
    struct TimerChurner {
        stale: Option<TimerId>,
        churns: u32,
    }

    impl Actor<Ping> for TimerChurner {
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            // A timer that fires, whose handle we cancel *afterwards*.
            self.stale = Some(ctx.set_timer(Duration::from_millis(1), 1));
            // Set-and-cancel churn within one handler.
            for i in 0..self.churns {
                let id = ctx.set_timer(Duration::from_millis(5 + u64::from(i)), 100 + u64::from(i));
                ctx.cancel_timer(id);
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: Ping, _ctx: &mut Context<'_, Ping>) {}
        fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, Ping>) {
            if tag == 1 {
                // Cancel the handle of the timer that just fired: a no-op
                // that must leave no tombstone behind.
                ctx.cancel_timer(self.stale.expect("set in on_start"));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn cancelled_timer_bookkeeping_does_not_leak() {
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::lan(), 5);
        sim.add_actor(
            NodeId::replica(0),
            Box::new(TimerChurner {
                stale: None,
                churns: 200,
            }),
        );
        // A node that cancels a timer and then crashes before it would fire:
        // the pop must still clear the tombstone.
        struct CancelThenCrash;
        impl Actor<Ping> for CancelThenCrash {
            fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
                let id = ctx.set_timer(Duration::from_secs(2), 9);
                ctx.cancel_timer(id);
            }
            fn on_message(&mut self, _f: NodeId, _m: Ping, _c: &mut Context<'_, Ping>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let faults = FaultPlan::none().with_crash(ReplicaId::new(1), SimTime::from_secs(1));
        let mut crash_sim: Simulation<Ping> =
            Simulation::with_faults(NetworkConfig::lan(), faults, 6);
        crash_sim.add_actor(NodeId::replica(1), Box::new(CancelThenCrash));

        sim.run_to_completion();
        crash_sim.run_to_completion();
        assert!(sim.cancelled_timers.is_empty(), "tombstones leaked");
        assert!(sim.armed_timers.is_empty(), "armed set leaked");
        assert!(crash_sim.cancelled_timers.is_empty(), "crash leaked");
        assert!(crash_sim.armed_timers.is_empty(), "crash leaked armed");
    }

    #[test]
    fn max_events_limits_livelock() {
        // Two actors that ping each other forever.
        struct Forever {
            peer: NodeId,
        }
        impl Actor<Ping> for Forever {
            fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
                ctx.send(self.peer, Ping { hops: 0, bytes: 8 });
            }
            fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<'_, Ping>) {
                ctx.send(from, msg);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::lan(), 5);
        sim.set_max_events(500);
        sim.add_actor(
            NodeId::replica(0),
            Box::new(Forever {
                peer: NodeId::replica(1),
            }),
        );
        sim.add_actor(
            NodeId::replica(1),
            Box::new(Forever {
                peer: NodeId::replica(0),
            }),
        );
        let report = sim.run_to_completion();
        assert_eq!(report.events_processed, 500);
    }

    #[test]
    fn nic_serialization_queues_large_messages() {
        // Sending two large messages back-to-back: the second one's delivery
        // is delayed by the first one's serialization time.
        struct Burst {
            peer: NodeId,
        }
        impl Actor<Ping> for Burst {
            fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
                ctx.send(
                    self.peer,
                    Ping {
                        hops: 0,
                        bytes: 2_000_000,
                    },
                );
                ctx.send(
                    self.peer,
                    Ping {
                        hops: 1,
                        bytes: 2_000_000,
                    },
                );
            }
            fn on_message(&mut self, _f: NodeId, _m: Ping, _c: &mut Context<'_, Ping>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        struct Sink {
            arrivals: Vec<SimTime>,
        }
        impl Actor<Ping> for Sink {
            fn on_message(&mut self, _f: NodeId, _m: Ping, ctx: &mut Context<'_, Ping>) {
                self.arrivals.push(ctx.now());
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::lan(), 9);
        let a = NodeId::replica(0);
        let b = NodeId::replica(1);
        sim.add_actor(a, Box::new(Burst { peer: b }));
        sim.add_actor(
            b,
            Box::new(Sink {
                arrivals: Vec::new(),
            }),
        );
        sim.run_to_completion();
        let sink: &Sink = sim.actor_as(b).unwrap();
        assert_eq!(sink.arrivals.len(), 2);
        let gap = sink.arrivals[1] - sink.arrivals[0];
        // 2 MB at 1 Gbps is ~16 ms of serialization; the gap reflects it.
        assert!(gap >= Duration::from_millis(14), "gap was {gap}");
    }

    /// A sender that broadcasts one message to all peers, either through the
    /// coalesced multicast or as explicit per-recipient unicasts.
    struct Broadcaster {
        peers: Vec<NodeId>,
        coalesce: bool,
    }
    impl Actor<Ping> for Broadcaster {
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            let msg = Ping {
                hops: 0,
                bytes: 1_000,
            };
            if self.coalesce {
                ctx.multicast(self.peers.iter().copied(), msg);
            } else {
                for &p in &self.peers {
                    ctx.send(p, msg.clone());
                }
            }
        }
        fn on_message(&mut self, _f: NodeId, _m: Ping, _c: &mut Context<'_, Ping>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
    }
    struct ArrivalSink {
        arrivals: Vec<SimTime>,
    }
    impl Actor<Ping> for ArrivalSink {
        fn on_message(&mut self, _f: NodeId, _m: Ping, ctx: &mut Context<'_, Ping>) {
            self.arrivals.push(ctx.now());
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn broadcast_sim(coalesce: bool, peers: u32) -> Simulation<Ping> {
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::wan(), 17);
        let targets: Vec<NodeId> = (1..=peers).map(NodeId::replica).collect();
        sim.add_actor(
            NodeId::replica(0),
            Box::new(Broadcaster {
                peers: targets.clone(),
                coalesce,
            }),
        );
        for t in targets {
            sim.add_actor(
                t,
                Box::new(ArrivalSink {
                    arrivals: Vec::new(),
                }),
            );
        }
        sim
    }

    #[test]
    fn coalesced_multicast_matches_per_recipient_arrival_times() {
        // The batch path must charge the exact same NIC + propagation math as
        // n unicasts: every recipient sees identical arrival times.
        let peers = 12u32;
        let mut batched = broadcast_sim(true, peers);
        let mut unicast = broadcast_sim(false, peers);
        let batched_report = batched.run_to_completion();
        let unicast_report = unicast.run_to_completion();
        for p in 1..=peers {
            let b: &ArrivalSink = batched.actor_as(NodeId::replica(p)).unwrap();
            let u: &ArrivalSink = unicast.actor_as(NodeId::replica(p)).unwrap();
            assert_eq!(b.arrivals, u.arrivals, "recipient {p} diverged");
        }
        assert_eq!(batched_report.messages_sent, unicast_report.messages_sent);
        assert_eq!(batched_report.bytes_sent, unicast_report.bytes_sent);
        // The whole broadcast occupied one queue entry instead of n.
        assert!(
            batched_report.peak_queue_len < unicast_report.peak_queue_len,
            "batched peak {} vs unicast peak {}",
            batched_report.peak_queue_len,
            unicast_report.peak_queue_len
        );
    }

    #[test]
    fn coalesced_multicast_skips_crashed_recipients() {
        let faults = FaultPlan::none().with_crash(ReplicaId::new(2), SimTime::ZERO);
        let mut sim: Simulation<Ping> = Simulation::with_faults(NetworkConfig::lan(), faults, 3);
        let targets: Vec<NodeId> = (1..=3).map(NodeId::replica).collect();
        sim.add_actor(
            NodeId::replica(0),
            Box::new(Broadcaster {
                peers: targets.clone(),
                coalesce: true,
            }),
        );
        for t in targets {
            sim.add_actor(
                t,
                Box::new(ArrivalSink {
                    arrivals: Vec::new(),
                }),
            );
        }
        sim.run_to_completion();
        let crashed: &ArrivalSink = sim.actor_as(NodeId::replica(2)).unwrap();
        assert!(crashed.arrivals.is_empty());
        for p in [1u32, 3] {
            let alive: &ArrivalSink = sim.actor_as(NodeId::replica(p)).unwrap();
            assert_eq!(alive.arrivals.len(), 1, "replica {p} missed delivery");
        }
    }

    /// A gossip actor built to stress every parallel-engine code path:
    /// coalesced broadcasts (batch remainders crossing windows), in-window
    /// timers and self-sends (lane stops), and timer cancellation both
    /// within and across windows.
    struct Stormer {
        peers: Vec<NodeId>,
        arrivals: Vec<(NodeId, SimTime)>,
        rebroadcasts: u32,
        ticks: u32,
        long_timer: Option<TimerId>,
        rng_draws: Vec<u32>,
    }

    impl Stormer {
        fn boxed(peers: Vec<NodeId>) -> Box<Self> {
            Box::new(Stormer {
                peers,
                arrivals: Vec::new(),
                rebroadcasts: 0,
                ticks: 0,
                long_timer: None,
                rng_draws: Vec::new(),
            })
        }
    }

    impl Actor<Ping> for Stormer {
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.multicast(
                self.peers.iter().copied(),
                Ping {
                    hops: 0,
                    bytes: 600,
                },
            );
            // Fires inside the first lookahead window: forces a lane stop.
            ctx.set_timer(Duration::from_micros(100), 1);
            // Cancelled by the first message, typically in a later window.
            self.long_timer = Some(ctx.set_timer(Duration::from_millis(50), 2));
        }

        fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<'_, Ping>) {
            self.arrivals.push((from, ctx.now()));
            self.rng_draws.push(orthrus_types::rng::Rng::gen(ctx.rng()));
            if let Some(id) = self.long_timer.take() {
                ctx.cancel_timer(id);
            }
            if msg.hops < 2 && self.rebroadcasts < 4 {
                self.rebroadcasts += 1;
                ctx.multicast(
                    self.peers.iter().copied(),
                    Ping {
                        hops: msg.hops + 1,
                        bytes: 600,
                    },
                );
            }
        }

        fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, Ping>) {
            assert_eq!(tag, 1, "the long timer must always be cancelled");
            self.ticks += 1;
            // A self-send lands inside the window (1 µs loopback).
            ctx.send(ctx.id(), Ping { hops: 9, bytes: 8 });
            if self.ticks < 3 {
                ctx.set_timer(Duration::from_micros(150), 1);
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn storm_sim(
        network: NetworkConfig,
        faults: FaultPlan,
        nodes: u32,
        threads: usize,
    ) -> Simulation<Ping> {
        let mut sim: Simulation<Ping> = Simulation::with_faults(network, faults, 23);
        if threads > 1 {
            sim.set_parallel_engine(threads);
        }
        let all: Vec<NodeId> = (0..nodes).map(NodeId::replica).collect();
        for &node in &all {
            let peers: Vec<NodeId> = all.iter().copied().filter(|&p| p != node).collect();
            sim.add_actor(node, Stormer::boxed(peers));
        }
        sim
    }

    /// Per-node (arrivals, rng draws, tick count) — everything a Stormer
    /// observes, so equality here means bit-identical execution.
    type StormPrint = (Vec<(NodeId, SimTime)>, Vec<u32>, u32);

    fn storm_fingerprint(sim: &Simulation<Ping>, nodes: u32) -> Vec<StormPrint> {
        (0..nodes)
            .map(|n| {
                let s: &Stormer = sim.actor_as(NodeId::replica(n)).unwrap();
                (s.arrivals.clone(), s.rng_draws.clone(), s.ticks)
            })
            .collect()
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_serial() {
        for network in [NetworkConfig::lan(), NetworkConfig::wan()] {
            let nodes = 12u32;
            let mut serial = storm_sim(network.clone(), FaultPlan::none(), nodes, 1);
            let serial_report = serial.run_to_completion();
            for threads in [2usize, 4, 8] {
                let mut parallel = storm_sim(network.clone(), FaultPlan::none(), nodes, threads);
                let parallel_report = parallel.run_to_completion();
                // Whole-report equality covers end time, event counts, wire
                // stats and the peak queue length (the restore/replay path
                // must reproduce the serial queue bookkeeping exactly).
                assert_eq!(
                    serial_report, parallel_report,
                    "{:?} x{threads}",
                    network.kind
                );
                assert_eq!(
                    storm_fingerprint(&serial, nodes),
                    storm_fingerprint(&parallel, nodes),
                    "{:?} x{threads}: actor states diverged",
                    network.kind
                );
                assert!(
                    parallel.windows_parallel() > 0,
                    "{:?} x{threads}: the storm never fanned out",
                    network.kind
                );
                assert!(parallel.armed_timers.is_empty());
                assert!(parallel.cancelled_timers.is_empty());
            }
        }
    }

    #[test]
    fn parallel_engine_fault_windows_fall_back_to_serial() {
        let nodes = 8u32;
        // A straggler makes every window hazardous: the run must stay fully
        // serial and still match the serial engine bit for bit.
        let straggler = FaultPlan::one_straggler(ReplicaId::new(1));
        let mut serial = storm_sim(NetworkConfig::lan(), straggler.clone(), nodes, 1);
        let mut parallel = storm_sim(NetworkConfig::lan(), straggler, nodes, 4);
        assert_eq!(serial.run_to_completion(), parallel.run_to_completion());
        assert_eq!(parallel.windows_parallel(), 0);
        assert!(parallel.windows_serial() > 0);
        assert_eq!(
            storm_fingerprint(&serial, nodes),
            storm_fingerprint(&parallel, nodes)
        );

        // A crash-recover window forces serial execution only while it is
        // active; the run must be identical either way.
        let faults = FaultPlan::none().with_crash_recover(
            ReplicaId::new(2),
            SimTime::from_micros(400),
            SimTime::from_millis(2),
        );
        let mut serial = storm_sim(NetworkConfig::lan(), faults.clone(), nodes, 1);
        let mut parallel = storm_sim(NetworkConfig::lan(), faults, nodes, 4);
        assert_eq!(serial.run_to_completion(), parallel.run_to_completion());
        assert!(
            parallel.windows_serial() > 0,
            "hazard windows must go serial"
        );
        assert_eq!(
            storm_fingerprint(&serial, nodes),
            storm_fingerprint(&parallel, nodes)
        );
    }

    #[test]
    fn parallel_engine_respects_deadlines_and_resume() {
        let nodes = 10u32;
        let mut serial = storm_sim(NetworkConfig::wan(), FaultPlan::none(), nodes, 1);
        let mut parallel = storm_sim(NetworkConfig::wan(), FaultPlan::none(), nodes, 4);
        let deadline = SimTime::from_millis(120);
        assert_eq!(serial.run_until(deadline), parallel.run_until(deadline));
        // Resuming after a deadline must also stay aligned.
        assert_eq!(serial.run_to_completion(), parallel.run_to_completion());
        assert_eq!(
            storm_fingerprint(&serial, nodes),
            storm_fingerprint(&parallel, nodes)
        );
    }

    #[test]
    fn parallel_engine_profiling_samples_cover_all_windows() {
        let nodes = 12u32;
        let mut sim = storm_sim(NetworkConfig::lan(), FaultPlan::none(), nodes, 4);
        sim.set_engine_profiling(true);
        let report = sim.run_to_completion();
        let samples = sim.window_samples();
        assert_eq!(
            samples.len() as u64,
            sim.windows_parallel() + sim.windows_serial()
        );
        let invocations: u64 = samples.iter().map(|s| s.invocations).sum();
        assert_eq!(invocations, report.events_processed);
        assert!(samples
            .iter()
            .any(|s| s.lanes > 1 && s.sum_lane_ns >= s.max_lane_ns && s.max_lane_ns > 0));
    }

    #[test]
    fn parallel_engine_heap_queue_matches_calendar() {
        let nodes = 8u32;
        let build = |kind: QueueKind, threads: usize| {
            let mut sim: Simulation<Ping> =
                Simulation::with_queue(NetworkConfig::lan(), FaultPlan::none(), 23, kind);
            if threads > 1 {
                sim.set_parallel_engine(threads);
            }
            let all: Vec<NodeId> = (0..nodes).map(NodeId::replica).collect();
            for &node in &all {
                let peers: Vec<NodeId> = all.iter().copied().filter(|&p| p != node).collect();
                sim.add_actor(node, Stormer::boxed(peers));
            }
            sim.run_to_completion()
        };
        let serial = build(QueueKind::Heap, 1);
        assert_eq!(serial, build(QueueKind::Heap, 4));
        assert_eq!(serial, build(QueueKind::Calendar, 4));
    }
}
