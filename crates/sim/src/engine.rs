//! The discrete-event simulation engine.
//!
//! The engine owns the actors, the virtual clock, the event queue, the
//! network model and the fault plan. It repeatedly pops the earliest event,
//! advances the clock to its timestamp and dispatches it to the target actor;
//! messages the actor sends in response are run through the network model
//! (processing delay → NIC serialization with a per-sender queue →
//! propagation latency with jitter) and scheduled as future delivery events.
//!
//! The per-sender NIC queue is what reproduces the *leader bottleneck* that
//! motivates Multi-BFT consensus: a single-leader protocol funnels every
//! block through one NIC, while Multi-BFT spreads proposals over all
//! replicas.

use crate::actor::{Actor, Context, TimerId};
use crate::event::EventQueue;
use crate::faults::FaultPlan;
use crate::network::NetworkConfig;
use crate::node::{NodeId, Payload};
use crate::stats::StatsCollector;
use orthrus_types::rng::StdRng;
use orthrus_types::{Duration, SimTime};
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// Internal events moved through the queue.
enum EngineEvent<M> {
    Start { node: NodeId },
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, id: TimerId, tag: u64 },
}

/// Summary of a completed (or budget-limited) simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationReport {
    /// Virtual time when the run stopped.
    pub end_time: SimTime,
    /// Number of events dispatched.
    pub events_processed: u64,
    /// Number of protocol messages sent.
    pub messages_sent: u64,
    /// Number of protocol bytes sent.
    pub bytes_sent: u64,
}

/// The simulation: actors plus the virtual world they live in.
pub struct Simulation<M> {
    actors: HashMap<NodeId, Box<dyn Actor<M>>>,
    queue: EventQueue<EngineEvent<M>>,
    network: NetworkConfig,
    faults: FaultPlan,
    stats: StatsCollector,
    rngs: HashMap<NodeId, StdRng>,
    nic_free: HashMap<NodeId, SimTime>,
    cancelled_timers: HashSet<u64>,
    next_timer_id: u64,
    now: SimTime,
    seed: u64,
    events_processed: u64,
    messages_sent: u64,
    bytes_sent: u64,
    max_events: u64,
}

impl<M: Payload + 'static> Simulation<M> {
    /// Create a simulation over the given network with no faults.
    pub fn new(network: NetworkConfig, seed: u64) -> Self {
        Self::with_faults(network, FaultPlan::none(), seed)
    }

    /// Create a simulation over the given network and fault plan.
    pub fn with_faults(network: NetworkConfig, faults: FaultPlan, seed: u64) -> Self {
        Self {
            actors: HashMap::new(),
            queue: EventQueue::new(),
            network,
            faults,
            stats: StatsCollector::new(),
            rngs: HashMap::new(),
            nic_free: HashMap::new(),
            cancelled_timers: HashSet::new(),
            next_timer_id: 0,
            now: SimTime::ZERO,
            seed,
            events_processed: 0,
            messages_sent: 0,
            bytes_sent: 0,
            max_events: u64::MAX,
        }
    }

    /// Limit the total number of events the engine will dispatch (a safety
    /// valve against protocol livelock in tests).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Register an actor. Its `on_start` handler runs at the current virtual
    /// time once the simulation is (next) run.
    pub fn add_actor(&mut self, id: NodeId, actor: Box<dyn Actor<M>>) {
        let mut hasher = orthrus_types::crypto::FnvHasher::default();
        id.hash(&mut hasher);
        let node_seed = self.seed ^ hasher.finish();
        self.rngs.insert(id, StdRng::seed_from_u64(node_seed));
        self.actors.insert(id, actor);
        self.queue
            .schedule(self.now, EngineEvent::Start { node: id });
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The fault plan in force.
    #[inline]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The network configuration in force.
    #[inline]
    pub fn network(&self) -> &NetworkConfig {
        &self.network
    }

    /// Read access to the metrics collector.
    #[inline]
    pub fn stats(&self) -> &StatsCollector {
        &self.stats
    }

    /// Mutable access to the metrics collector (used by harnesses that feed
    /// in externally computed events).
    #[inline]
    pub fn stats_mut(&mut self) -> &mut StatsCollector {
        &mut self.stats
    }

    /// Look at an actor's final state, down-cast to its concrete type.
    pub fn actor_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.actors.get(&id).and_then(|a| a.as_any().downcast_ref())
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Run until the event queue drains or virtual time would exceed
    /// `deadline`, whichever comes first.
    pub fn run_until(&mut self, deadline: SimTime) -> SimulationReport {
        while self.events_processed < self.max_events {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    let (time, event) = self.queue.pop().expect("peeked event must exist");
                    self.now = self.now.max(time);
                    self.dispatch(event);
                    self.events_processed += 1;
                }
                _ => break,
            }
        }
        // Even if no event landed exactly on the deadline, the run covers the
        // full interval (unless the caller asked for "run forever", in which
        // case the clock stays at the last event).
        if deadline.0 != u64::MAX && self.queue.peek_time().is_none_or(|t| t > deadline) {
            self.now = self.now.max(deadline);
        }
        self.report()
    }

    /// Run for an additional `span` of virtual time.
    pub fn run_for(&mut self, span: Duration) -> SimulationReport {
        let deadline = self.now + span;
        self.run_until(deadline)
    }

    /// Run until the event queue is completely drained.
    pub fn run_to_completion(&mut self) -> SimulationReport {
        self.run_until(SimTime(u64::MAX))
    }

    fn report(&self) -> SimulationReport {
        SimulationReport {
            end_time: self.now,
            events_processed: self.events_processed,
            messages_sent: self.messages_sent,
            bytes_sent: self.bytes_sent,
        }
    }

    fn node_slowdown(&self, node: NodeId) -> f64 {
        match node {
            NodeId::Replica(r) => self.faults.slowdown(r),
            NodeId::Client(_) => 1.0,
        }
    }

    fn node_crashed(&self, node: NodeId, at: SimTime) -> bool {
        match node {
            NodeId::Replica(r) => self.faults.is_crashed(r, at),
            NodeId::Client(_) => false,
        }
    }

    #[allow(clippy::type_complexity)]
    fn dispatch(&mut self, event: EngineEvent<M>) {
        let (node, from, msg, timer): (NodeId, Option<NodeId>, Option<M>, Option<(TimerId, u64)>) =
            match event {
                EngineEvent::Start { node } => (node, None, None, None),
                EngineEvent::Deliver { from, to, msg } => (to, Some(from), Some(msg), None),
                EngineEvent::Timer { node, id, tag } => (node, None, None, Some((id, tag))),
            };

        if self.node_crashed(node, self.now) {
            return;
        }
        if let Some((id, _)) = timer {
            if self.cancelled_timers.remove(&id.0) {
                return;
            }
        }
        let Some(mut actor) = self.actors.remove(&node) else {
            return;
        };

        let mut outbox: Vec<(NodeId, M)> = Vec::new();
        let mut timer_requests: Vec<(Duration, u64, TimerId)> = Vec::new();
        {
            let rng = self
                .rngs
                .get_mut(&node)
                .expect("every actor has an rng stream");
            let mut ctx = Context {
                now: self.now,
                self_id: node,
                rng,
                stats: &mut self.stats,
                outbox: &mut outbox,
                timer_requests: &mut timer_requests,
                cancelled_timers: &mut self.cancelled_timers,
                next_timer_id: &mut self.next_timer_id,
            };
            match (from, msg, timer) {
                (Some(from), Some(msg), _) => actor.on_message(from, msg, &mut ctx),
                (_, _, Some((_, tag))) => actor.on_timer(tag, &mut ctx),
                _ => actor.on_start(&mut ctx),
            }
        }
        self.actors.insert(node, actor);

        // Apply buffered timer requests.
        for (delay, tag, id) in timer_requests {
            self.queue
                .schedule(self.now + delay, EngineEvent::Timer { node, id, tag });
        }
        // Apply buffered sends through the network model.
        self.deliver_outbox(node, outbox);
    }

    fn deliver_outbox(&mut self, from: NodeId, outbox: Vec<(NodeId, M)>) {
        if outbox.is_empty() {
            return;
        }
        let slow_from = self.node_slowdown(from);
        for (to, msg) in outbox {
            let bytes = msg.wire_bytes();
            self.messages_sent += 1;
            self.bytes_sent += bytes;
            self.stats.messages_sent += 1;
            self.stats.bytes_sent += bytes;

            let processing = self.network.processing_per_message.mul_f64(slow_from);
            let ready = self.now + processing;

            // Per-sender NIC: messages serialize one after another.
            let serialization = self.network.serialization_delay(bytes).mul_f64(slow_from);
            let nic_free = self.nic_free.get(&from).copied().unwrap_or(SimTime::ZERO);
            let start = if nic_free > ready { nic_free } else { ready };
            let done = start + serialization;
            self.nic_free.insert(from, done);

            let rng = self.rngs.get_mut(&from).expect("sender has an rng stream");
            let propagation = self
                .network
                .sample_latency(from, to, rng)
                .mul_f64(slow_from);
            let recv_processing = self
                .network
                .processing_per_message
                .mul_f64(self.node_slowdown(to));
            let arrival = done + propagation + recv_processing;
            self.queue
                .schedule(arrival, EngineEvent::Deliver { from, to, msg });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::ReplicaId;
    use std::any::Any;

    /// A message carrying a hop counter, used to bounce between two actors.
    #[derive(Clone)]
    struct Ping {
        hops: u32,
        bytes: u64,
    }

    impl Payload for Ping {
        fn wire_bytes(&self) -> u64 {
            self.bytes
        }
    }

    /// Bounces every ping back until `hops` reaches a limit and records the
    /// arrival times.
    struct Bouncer {
        peer: NodeId,
        limit: u32,
        arrivals: Vec<SimTime>,
        timer_fired: u32,
        start_pings: bool,
    }

    impl Actor<Ping> for Bouncer {
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            if self.start_pings {
                ctx.send(
                    self.peer,
                    Ping {
                        hops: 0,
                        bytes: 100,
                    },
                );
            }
        }

        fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<'_, Ping>) {
            self.arrivals.push(ctx.now());
            if msg.hops < self.limit {
                ctx.send(
                    from,
                    Ping {
                        hops: msg.hops + 1,
                        bytes: msg.bytes,
                    },
                );
            }
        }

        fn on_timer(&mut self, _tag: u64, _ctx: &mut Context<'_, Ping>) {
            self.timer_fired += 1;
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn bouncer(peer: NodeId, start: bool) -> Box<Bouncer> {
        Box::new(Bouncer {
            peer,
            limit: 4,
            arrivals: Vec::new(),
            timer_fired: 0,
            start_pings: start,
        })
    }

    #[test]
    fn ping_pong_advances_virtual_time() {
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::lan(), 42);
        let a = NodeId::replica(0);
        let b = NodeId::replica(1);
        sim.add_actor(a, bouncer(b, true));
        sim.add_actor(b, bouncer(a, false));
        let report = sim.run_to_completion();
        // 5 deliveries total (hops 0..=4), alternating between b and a.
        let a_state: &Bouncer = sim.actor_as(a).unwrap();
        let b_state: &Bouncer = sim.actor_as(b).unwrap();
        assert_eq!(a_state.arrivals.len() + b_state.arrivals.len(), 5);
        assert!(report.end_time > SimTime::ZERO);
        assert_eq!(report.messages_sent, 5);
        assert!(report.bytes_sent >= 500);
        // Arrival times strictly increase across the exchange.
        let mut all: Vec<SimTime> = a_state
            .arrivals
            .iter()
            .chain(b_state.arrivals.iter())
            .copied()
            .collect();
        let sorted = {
            let mut s = all.clone();
            s.sort_unstable();
            s
        };
        all.sort_unstable();
        assert_eq!(all, sorted);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed: u64| {
            let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::wan(), seed);
            let a = NodeId::replica(0);
            let b = NodeId::replica(3);
            sim.add_actor(a, bouncer(b, true));
            sim.add_actor(b, bouncer(a, false));
            sim.run_to_completion().end_time
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn straggler_slows_down_its_messages() {
        let run = |faults: FaultPlan| {
            let mut sim: Simulation<Ping> =
                Simulation::with_faults(NetworkConfig::wan(), faults, 1);
            let a = NodeId::replica(0);
            let b = NodeId::replica(1);
            sim.add_actor(a, bouncer(b, true));
            sim.add_actor(b, bouncer(a, false));
            sim.run_to_completion().end_time
        };
        let normal = run(FaultPlan::none());
        let slow = run(FaultPlan::one_straggler(ReplicaId::new(0)));
        assert!(slow > normal);
        // Half the hops originate at the straggler, so the end-to-end time
        // should be substantially (though not 10x) larger.
        assert!(slow.as_micros() as f64 > normal.as_micros() as f64 * 3.0);
    }

    #[test]
    fn crashed_nodes_go_silent() {
        let faults = FaultPlan::none().with_crash(ReplicaId::new(1), SimTime::ZERO);
        let mut sim: Simulation<Ping> = Simulation::with_faults(NetworkConfig::lan(), faults, 1);
        let a = NodeId::replica(0);
        let b = NodeId::replica(1);
        sim.add_actor(a, bouncer(b, true));
        sim.add_actor(b, bouncer(a, false));
        sim.run_to_completion();
        let b_state: &Bouncer = sim.actor_as(b).unwrap();
        // The crashed node never processed anything.
        assert!(b_state.arrivals.is_empty());
    }

    #[test]
    fn run_until_respects_the_deadline() {
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::wan(), 11);
        let a = NodeId::replica(0);
        let b = NodeId::replica(2);
        sim.add_actor(a, bouncer(b, true));
        sim.add_actor(b, bouncer(a, false));
        let deadline = SimTime::from_millis(100);
        let report = sim.run_until(deadline);
        assert!(report.end_time <= SimTime::from_millis(100) || report.end_time == deadline);
        // Continuing afterwards processes the rest.
        let final_report = sim.run_to_completion();
        assert!(final_report.events_processed >= report.events_processed);
    }

    /// Actor used to test timers and cancellation.
    struct TimerUser {
        fired: Vec<u64>,
        cancel_second: bool,
    }

    impl Actor<Ping> for TimerUser {
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.set_timer(Duration::from_millis(10), 1);
            let second = ctx.set_timer(Duration::from_millis(20), 2);
            if self.cancel_second {
                ctx.cancel_timer(second);
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: Ping, _ctx: &mut Context<'_, Ping>) {}
        fn on_timer(&mut self, tag: u64, _ctx: &mut Context<'_, Ping>) {
            self.fired.push(tag);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn timers_fire_and_cancel() {
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::lan(), 3);
        let n = NodeId::replica(0);
        sim.add_actor(
            n,
            Box::new(TimerUser {
                fired: Vec::new(),
                cancel_second: true,
            }),
        );
        sim.run_to_completion();
        let state: &TimerUser = sim.actor_as(n).unwrap();
        assert_eq!(state.fired, vec![1]);
    }

    #[test]
    fn max_events_limits_livelock() {
        // Two actors that ping each other forever.
        struct Forever {
            peer: NodeId,
        }
        impl Actor<Ping> for Forever {
            fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
                ctx.send(self.peer, Ping { hops: 0, bytes: 8 });
            }
            fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<'_, Ping>) {
                ctx.send(from, msg);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::lan(), 5);
        sim.set_max_events(500);
        sim.add_actor(
            NodeId::replica(0),
            Box::new(Forever {
                peer: NodeId::replica(1),
            }),
        );
        sim.add_actor(
            NodeId::replica(1),
            Box::new(Forever {
                peer: NodeId::replica(0),
            }),
        );
        let report = sim.run_to_completion();
        assert_eq!(report.events_processed, 500);
    }

    #[test]
    fn nic_serialization_queues_large_messages() {
        // Sending two large messages back-to-back: the second one's delivery
        // is delayed by the first one's serialization time.
        struct Burst {
            peer: NodeId,
        }
        impl Actor<Ping> for Burst {
            fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
                ctx.send(
                    self.peer,
                    Ping {
                        hops: 0,
                        bytes: 2_000_000,
                    },
                );
                ctx.send(
                    self.peer,
                    Ping {
                        hops: 1,
                        bytes: 2_000_000,
                    },
                );
            }
            fn on_message(&mut self, _f: NodeId, _m: Ping, _c: &mut Context<'_, Ping>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        struct Sink {
            arrivals: Vec<SimTime>,
        }
        impl Actor<Ping> for Sink {
            fn on_message(&mut self, _f: NodeId, _m: Ping, ctx: &mut Context<'_, Ping>) {
                self.arrivals.push(ctx.now());
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::lan(), 9);
        let a = NodeId::replica(0);
        let b = NodeId::replica(1);
        sim.add_actor(a, Box::new(Burst { peer: b }));
        sim.add_actor(
            b,
            Box::new(Sink {
                arrivals: Vec::new(),
            }),
        );
        sim.run_to_completion();
        let sink: &Sink = sim.actor_as(b).unwrap();
        assert_eq!(sink.arrivals.len(), 2);
        let gap = sink.arrivals[1] - sink.arrivals[0];
        // 2 MB at 1 Gbps is ~16 ms of serialization; the gap reflects it.
        assert!(gap >= Duration::from_millis(14), "gap was {gap}");
    }
}
