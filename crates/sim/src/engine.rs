//! The discrete-event simulation engine.
//!
//! The engine owns the actors, the virtual clock, the event queue, the
//! network model and the fault plan. It repeatedly pops the earliest event,
//! advances the clock to its timestamp and dispatches it to the target actor;
//! messages the actor sends in response are run through the network model
//! (processing delay → NIC serialization with a per-sender queue →
//! propagation latency with jitter) and scheduled as future delivery events.
//!
//! The per-sender NIC queue is what reproduces the *leader bottleneck* that
//! motivates Multi-BFT consensus: a single-leader protocol funnels every
//! block through one NIC, while Multi-BFT spreads proposals over all
//! replicas.
//!
//! Multicasts are *coalesced*: an `n`-way [`Context::multicast`] occupies a
//! single [`EngineEvent::DeliverBatch`] queue entry carrying one message and
//! a per-recipient delivery plan (NIC serialization is still charged once per
//! copy, and per-link latency is sampled in deterministic recipient order at
//! send time). The batch dispatches each recipient exactly at its arrival
//! time and re-schedules itself for the next one, so the queue holds one
//! entry per in-flight broadcast instead of `n` — at 128 replicas this
//! shrinks the peak queue by roughly the fan-out.
//!
//! Coalescing preserves every per-recipient *arrival time* and the relative
//! order of a batch's own deliveries, but not the interleaving with
//! unrelated events at the exact same timestamp: the rescheduled remainder
//! carries a fresh insertion sequence, so a tie against another sender's
//! message may dispatch in a different order than the per-recipient path
//! would have. Runs remain fully deterministic for a given seed and
//! configuration — only the (arbitrary) tie-break between simultaneous
//! events differs between the two delivery strategies.

use crate::actor::{Actor, Context, Outbound, TimerId};
use crate::event::{EventQueue, QueueKind};
use crate::faults::FaultPlan;
use crate::network::NetworkConfig;
use crate::node::{NodeId, Payload};
use crate::stats::StatsCollector;
use orthrus_types::rng::StdRng;
use orthrus_types::{Duration, SimTime};
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// Internal events moved through the queue.
enum EngineEvent<M> {
    Start {
        node: NodeId,
    },
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    /// A coalesced multicast: one message, one queue entry, many recipients.
    /// `plan` is sorted by arrival time (ties keep recipient order) and
    /// `next` indexes the first undelivered recipient.
    DeliverBatch {
        from: NodeId,
        msg: M,
        plan: Vec<(SimTime, NodeId)>,
        next: usize,
    },
    Timer {
        node: NodeId,
        id: TimerId,
        tag: u64,
    },
    /// A crash-recover fault's restart instant: fire the actor's
    /// `on_recover` hook.
    Recover {
        node: NodeId,
    },
}

/// What a dispatched event asks of an actor.
enum Invocation<M> {
    Start,
    Message { from: NodeId, msg: M },
    Timer { tag: u64 },
    Recover,
}

/// Summary of a completed (or budget-limited) simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationReport {
    /// Virtual time when the run stopped.
    pub end_time: SimTime,
    /// Number of events dispatched.
    pub events_processed: u64,
    /// Number of protocol messages sent.
    pub messages_sent: u64,
    /// Number of protocol bytes sent.
    pub bytes_sent: u64,
    /// Largest number of events simultaneously waiting in the queue.
    pub peak_queue_len: u64,
}

/// The simulation: actors plus the virtual world they live in.
pub struct Simulation<M> {
    actors: HashMap<NodeId, Box<dyn Actor<M>>>,
    queue: EventQueue<EngineEvent<M>>,
    network: NetworkConfig,
    faults: FaultPlan,
    stats: StatsCollector,
    rngs: HashMap<NodeId, StdRng>,
    nic_free: HashMap<NodeId, SimTime>,
    /// Timers scheduled but not yet popped. Entries leave on pop, so the set
    /// is bounded by the number of in-flight timers.
    armed_timers: HashSet<u64>,
    /// Armed timers that were cancelled. Entries leave when the timer's event
    /// pops (even if the node crashed meanwhile), so long runs do not leak.
    cancelled_timers: HashSet<u64>,
    next_timer_id: u64,
    now: SimTime,
    seed: u64,
    events_processed: u64,
    messages_sent: u64,
    bytes_sent: u64,
    max_events: u64,
}

// `M: Clone` is required at the engine level (not just on `multicast`)
// because any actor may multicast and the coalesced batch clones the message
// per recipient at dispatch; the workspace's `Arc`-backed payload convention
// makes that a reference-count bump.
impl<M: Payload + Clone + 'static> Simulation<M> {
    /// Create a simulation over the given network with no faults.
    pub fn new(network: NetworkConfig, seed: u64) -> Self {
        Self::with_faults(network, FaultPlan::none(), seed)
    }

    /// Create a simulation over the given network and fault plan, using the
    /// default (calendar) event queue.
    pub fn with_faults(network: NetworkConfig, faults: FaultPlan, seed: u64) -> Self {
        Self::with_queue(network, faults, seed, QueueKind::default())
    }

    /// Create a simulation with an explicit event-queue implementation. Both
    /// kinds produce bit-identical traces; differential tests drive both.
    pub fn with_queue(
        network: NetworkConfig,
        faults: FaultPlan,
        seed: u64,
        queue: QueueKind,
    ) -> Self {
        Self {
            actors: HashMap::new(),
            queue: EventQueue::with_kind(queue),
            network,
            faults,
            stats: StatsCollector::new(),
            rngs: HashMap::new(),
            nic_free: HashMap::new(),
            armed_timers: HashSet::new(),
            cancelled_timers: HashSet::new(),
            next_timer_id: 0,
            now: SimTime::ZERO,
            seed,
            events_processed: 0,
            messages_sent: 0,
            bytes_sent: 0,
            max_events: u64::MAX,
        }
    }

    /// Limit the total number of events the engine will dispatch (a safety
    /// valve against protocol livelock in tests).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Register an actor. Its `on_start` handler runs at the current virtual
    /// time once the simulation is (next) run. If the fault plan gives the
    /// node a crash-recover window, its restart (`on_recover`) is scheduled
    /// at the window's `recover_at`.
    pub fn add_actor(&mut self, id: NodeId, actor: Box<dyn Actor<M>>) {
        let mut hasher = orthrus_types::crypto::FnvHasher::default();
        id.hash(&mut hasher);
        let node_seed = self.seed ^ hasher.finish();
        self.rngs.insert(id, StdRng::seed_from_u64(node_seed));
        self.actors.insert(id, actor);
        self.queue
            .schedule(self.now, EngineEvent::Start { node: id });
        if let NodeId::Replica(replica) = id {
            if let Some(recovery) = self.faults.recovery_of(replica) {
                self.queue
                    .schedule(recovery.recover_at, EngineEvent::Recover { node: id });
            }
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The fault plan in force.
    #[inline]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The network configuration in force.
    #[inline]
    pub fn network(&self) -> &NetworkConfig {
        &self.network
    }

    /// Read access to the metrics collector.
    #[inline]
    pub fn stats(&self) -> &StatsCollector {
        &self.stats
    }

    /// Mutable access to the metrics collector (used by harnesses that feed
    /// in externally computed events).
    #[inline]
    pub fn stats_mut(&mut self) -> &mut StatsCollector {
        &mut self.stats
    }

    /// Look at an actor's final state, down-cast to its concrete type.
    pub fn actor_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.actors.get(&id).and_then(|a| a.as_any().downcast_ref())
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Run until the event queue drains or virtual time would exceed
    /// `deadline`, whichever comes first.
    pub fn run_until(&mut self, deadline: SimTime) -> SimulationReport {
        while self.events_processed < self.max_events {
            match self.queue.pop_before(deadline) {
                Ok((time, event)) => {
                    self.now = self.now.max(time);
                    self.dispatch(event);
                    self.events_processed += 1;
                }
                Err(_) => break,
            }
        }
        // Even if no event landed exactly on the deadline, the run covers the
        // full interval (unless the caller asked for "run forever", in which
        // case the clock stays at the last event).
        if deadline.0 != u64::MAX && self.queue.peek_time().is_none_or(|t| t > deadline) {
            self.now = self.now.max(deadline);
        }
        self.report()
    }

    /// Run for an additional `span` of virtual time.
    pub fn run_for(&mut self, span: Duration) -> SimulationReport {
        let deadline = self.now + span;
        self.run_until(deadline)
    }

    /// Run until the event queue is completely drained.
    pub fn run_to_completion(&mut self) -> SimulationReport {
        self.run_until(SimTime(u64::MAX))
    }

    fn report(&self) -> SimulationReport {
        SimulationReport {
            end_time: self.now,
            events_processed: self.events_processed,
            messages_sent: self.messages_sent,
            bytes_sent: self.bytes_sent,
            peak_queue_len: self.queue.peak_len() as u64,
        }
    }

    fn node_slowdown(&self, node: NodeId) -> f64 {
        match node {
            NodeId::Replica(r) => self.faults.slowdown(r),
            NodeId::Client(_) => 1.0,
        }
    }

    fn node_crashed(&self, node: NodeId, at: SimTime) -> bool {
        match node {
            NodeId::Replica(r) => self.faults.is_crashed(r, at),
            NodeId::Client(_) => false,
        }
    }

    fn dispatch(&mut self, event: EngineEvent<M>) {
        match event {
            EngineEvent::Start { node } => self.invoke(node, Invocation::Start),
            EngineEvent::Deliver { from, to, msg } => {
                self.invoke(to, Invocation::Message { from, msg });
            }
            EngineEvent::DeliverBatch {
                from,
                msg,
                plan,
                next,
            } => self.dispatch_batch(from, msg, plan, next),
            EngineEvent::Timer { node, id, tag } => {
                // Retire the timer's bookkeeping unconditionally — before the
                // crash check inside `invoke` — so cancelled timers of
                // crashed nodes do not leak their tombstones.
                self.armed_timers.remove(&id.0);
                if self.cancelled_timers.remove(&id.0) {
                    return;
                }
                self.invoke(node, Invocation::Timer { tag });
            }
            EngineEvent::Recover { node } => self.invoke(node, Invocation::Recover),
        }
    }

    /// Deliver the due prefix of a coalesced multicast, then re-schedule the
    /// remainder as the same single queue entry.
    fn dispatch_batch(&mut self, from: NodeId, msg: M, plan: Vec<(SimTime, NodeId)>, start: usize) {
        let mut due_end = start;
        while due_end < plan.len() && plan[due_end].0 <= self.now {
            due_end += 1;
        }
        // The pop that got us here counts as one event; tied arrivals beyond
        // the first still count individually so `events_processed` (and the
        // `max_events` livelock budget) track actor invocations, comparable
        // to the per-recipient path.
        self.events_processed += (due_end - start).saturating_sub(1) as u64;
        let mut msg = Some(msg);
        for (i, &(_, to)) in plan.iter().enumerate().take(due_end).skip(start) {
            let m = if i + 1 == plan.len() {
                msg.take()
                    .expect("batch message present until last recipient")
            } else {
                msg.as_ref()
                    .expect("batch message present until last recipient")
                    .clone()
            };
            self.invoke(to, Invocation::Message { from, msg: m });
        }
        if due_end < plan.len() {
            let at = plan[due_end].0;
            let msg = msg.take().expect("undelivered batch keeps its message");
            self.queue.schedule(
                at,
                EngineEvent::DeliverBatch {
                    from,
                    msg,
                    plan,
                    next: due_end,
                },
            );
        }
    }

    /// Run one actor handler and apply everything it buffered: timers first
    /// (so a timer set and cancelled in the same handler resolves), then
    /// cancellations, then outbound messages through the network model.
    fn invoke(&mut self, node: NodeId, invocation: Invocation<M>) {
        if self.node_crashed(node, self.now) {
            return;
        }
        let Some(mut actor) = self.actors.remove(&node) else {
            return;
        };

        let mut outbox: Vec<Outbound<M>> = Vec::new();
        let mut timer_requests: Vec<(Duration, u64, TimerId)> = Vec::new();
        let mut cancel_requests: Vec<u64> = Vec::new();
        {
            let rng = self
                .rngs
                .get_mut(&node)
                .expect("every actor has an rng stream");
            let mut ctx = Context {
                now: self.now,
                self_id: node,
                rng,
                stats: &mut self.stats,
                outbox: &mut outbox,
                timer_requests: &mut timer_requests,
                cancel_requests: &mut cancel_requests,
                next_timer_id: &mut self.next_timer_id,
            };
            match invocation {
                Invocation::Start => actor.on_start(&mut ctx),
                Invocation::Message { from, msg } => actor.on_message(from, msg, &mut ctx),
                Invocation::Timer { tag } => actor.on_timer(tag, &mut ctx),
                Invocation::Recover => actor.on_recover(&mut ctx),
            }
        }
        self.actors.insert(node, actor);

        // Apply buffered timer requests.
        for (delay, tag, id) in timer_requests {
            self.armed_timers.insert(id.0);
            self.queue
                .schedule(self.now + delay, EngineEvent::Timer { node, id, tag });
        }
        // Apply buffered cancellations. Only a still-armed timer leaves a
        // tombstone; cancelling an already-fired handle is a true no-op, so
        // neither set can grow without bound.
        for id in cancel_requests {
            if self.armed_timers.remove(&id) {
                self.cancelled_timers.insert(id);
            }
        }
        // Apply buffered sends through the network model.
        self.deliver_outbox(node, outbox);
    }

    fn deliver_outbox(&mut self, from: NodeId, outbox: Vec<Outbound<M>>) {
        if outbox.is_empty() {
            return;
        }
        let slow_from = self.node_slowdown(from);
        for item in outbox {
            match item {
                Outbound::One(to, msg) => self.deliver_unicast(from, to, msg, slow_from),
                Outbound::Many(recipients, msg) => {
                    self.deliver_multicast(from, recipients, msg, slow_from);
                }
            }
        }
    }

    /// Count `copies` sends of `bytes` each in the wire statistics.
    fn charge_send(&mut self, bytes: u64, copies: u64) {
        self.messages_sent += copies;
        self.bytes_sent += bytes * copies;
        self.stats.messages_sent += copies;
        self.stats.bytes_sent += bytes * copies;
    }

    /// When the sender's NIC can start serializing the next message of
    /// `bytes`, and how long one copy takes on the wire.
    fn nic_slot(&mut self, from: NodeId, bytes: u64, slow_from: f64) -> (SimTime, Duration) {
        let processing = self.network.processing_per_message.mul_f64(slow_from);
        let ready = self.now + processing;
        let serialization = self.network.serialization_delay(bytes).mul_f64(slow_from);
        let nic_free = self.nic_free.get(&from).copied().unwrap_or(SimTime::ZERO);
        let start = if nic_free > ready { nic_free } else { ready };
        (start, serialization)
    }

    /// Arrival time at `to` of a copy whose NIC serialization finished at
    /// `done`: jittered per-link propagation (drawn from the sender's RNG
    /// stream) plus receiver-side processing. Unicast and multicast both
    /// charge copies through here, so their arrival math cannot diverge.
    fn copy_arrival(&mut self, from: NodeId, to: NodeId, done: SimTime, slow_from: f64) -> SimTime {
        let rng = self.rngs.get_mut(&from).expect("sender has an rng stream");
        let propagation = self
            .network
            .sample_latency(from, to, rng)
            .mul_f64(slow_from);
        let recv_processing = self
            .network
            .processing_per_message
            .mul_f64(self.node_slowdown(to));
        done + propagation + recv_processing
    }

    fn deliver_unicast(&mut self, from: NodeId, to: NodeId, msg: M, slow_from: f64) {
        let bytes = msg.wire_bytes();
        self.charge_send(bytes, 1);
        // Per-sender NIC: messages serialize one after another.
        let (start, serialization) = self.nic_slot(from, bytes, slow_from);
        let done = start + serialization;
        self.nic_free.insert(from, done);
        let arrival = self.copy_arrival(from, to, done, slow_from);
        self.queue
            .schedule(arrival, EngineEvent::Deliver { from, to, msg });
    }

    /// Coalesce an `n`-way multicast into one queue entry. The network model
    /// is charged exactly as for `n` unicasts — per-message stats, one NIC
    /// serialization slot per copy, per-link jittered propagation sampled in
    /// recipient order — but the queue carries a single `DeliverBatch`.
    fn deliver_multicast(&mut self, from: NodeId, recipients: Vec<NodeId>, msg: M, slow_from: f64) {
        if recipients.len() == 1 {
            let to = recipients[0];
            return self.deliver_unicast(from, to, msg, slow_from);
        }
        let bytes = msg.wire_bytes();
        self.charge_send(bytes, recipients.len() as u64);
        let (start, serialization) = self.nic_slot(from, bytes, slow_from);

        let mut plan: Vec<(SimTime, NodeId)> = Vec::with_capacity(recipients.len());
        let mut done = start;
        for to in recipients {
            // The sender's NIC still serializes one copy per recipient.
            done += serialization;
            let arrival = self.copy_arrival(from, to, done, slow_from);
            plan.push((arrival, to));
        }
        self.nic_free.insert(from, done);

        // Stable sort: equal arrivals keep recipient order, matching the seq
        // tie-break the per-recipient path would have produced.
        plan.sort_by_key(|&(at, _)| at);
        let first = plan[0].0;
        self.queue.schedule(
            first,
            EngineEvent::DeliverBatch {
                from,
                msg,
                plan,
                next: 0,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::ReplicaId;
    use std::any::Any;

    /// A message carrying a hop counter, used to bounce between two actors.
    #[derive(Clone)]
    struct Ping {
        hops: u32,
        bytes: u64,
    }

    impl Payload for Ping {
        fn wire_bytes(&self) -> u64 {
            self.bytes
        }
    }

    /// Bounces every ping back until `hops` reaches a limit and records the
    /// arrival times.
    struct Bouncer {
        peer: NodeId,
        limit: u32,
        arrivals: Vec<SimTime>,
        timer_fired: u32,
        start_pings: bool,
    }

    impl Actor<Ping> for Bouncer {
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            if self.start_pings {
                ctx.send(
                    self.peer,
                    Ping {
                        hops: 0,
                        bytes: 100,
                    },
                );
            }
        }

        fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<'_, Ping>) {
            self.arrivals.push(ctx.now());
            if msg.hops < self.limit {
                ctx.send(
                    from,
                    Ping {
                        hops: msg.hops + 1,
                        bytes: msg.bytes,
                    },
                );
            }
        }

        fn on_timer(&mut self, _tag: u64, _ctx: &mut Context<'_, Ping>) {
            self.timer_fired += 1;
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn bouncer(peer: NodeId, start: bool) -> Box<Bouncer> {
        Box::new(Bouncer {
            peer,
            limit: 4,
            arrivals: Vec::new(),
            timer_fired: 0,
            start_pings: start,
        })
    }

    #[test]
    fn ping_pong_advances_virtual_time() {
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::lan(), 42);
        let a = NodeId::replica(0);
        let b = NodeId::replica(1);
        sim.add_actor(a, bouncer(b, true));
        sim.add_actor(b, bouncer(a, false));
        let report = sim.run_to_completion();
        // 5 deliveries total (hops 0..=4), alternating between b and a.
        let a_state: &Bouncer = sim.actor_as(a).unwrap();
        let b_state: &Bouncer = sim.actor_as(b).unwrap();
        assert_eq!(a_state.arrivals.len() + b_state.arrivals.len(), 5);
        assert!(report.end_time > SimTime::ZERO);
        assert_eq!(report.messages_sent, 5);
        assert!(report.bytes_sent >= 500);
        assert!(report.peak_queue_len >= 1);
        // Arrival times strictly increase across the exchange.
        let mut all: Vec<SimTime> = a_state
            .arrivals
            .iter()
            .chain(b_state.arrivals.iter())
            .copied()
            .collect();
        let sorted = {
            let mut s = all.clone();
            s.sort_unstable();
            s
        };
        all.sort_unstable();
        assert_eq!(all, sorted);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed: u64| {
            let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::wan(), seed);
            let a = NodeId::replica(0);
            let b = NodeId::replica(3);
            sim.add_actor(a, bouncer(b, true));
            sim.add_actor(b, bouncer(a, false));
            sim.run_to_completion().end_time
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn heap_and_calendar_queues_produce_identical_reports() {
        let run = |kind: QueueKind| {
            let mut sim: Simulation<Ping> =
                Simulation::with_queue(NetworkConfig::wan(), FaultPlan::none(), 7, kind);
            let a = NodeId::replica(0);
            let b = NodeId::replica(3);
            sim.add_actor(a, bouncer(b, true));
            sim.add_actor(b, bouncer(a, false));
            sim.run_to_completion()
        };
        assert_eq!(run(QueueKind::Heap), run(QueueKind::Calendar));
    }

    #[test]
    fn straggler_slows_down_its_messages() {
        let run = |faults: FaultPlan| {
            let mut sim: Simulation<Ping> =
                Simulation::with_faults(NetworkConfig::wan(), faults, 1);
            let a = NodeId::replica(0);
            let b = NodeId::replica(1);
            sim.add_actor(a, bouncer(b, true));
            sim.add_actor(b, bouncer(a, false));
            sim.run_to_completion().end_time
        };
        let normal = run(FaultPlan::none());
        let slow = run(FaultPlan::one_straggler(ReplicaId::new(0)));
        assert!(slow > normal);
        // Half the hops originate at the straggler, so the end-to-end time
        // should be substantially (though not 10x) larger.
        assert!(slow.as_micros() as f64 > normal.as_micros() as f64 * 3.0);
    }

    #[test]
    fn crashed_nodes_go_silent() {
        let faults = FaultPlan::none().with_crash(ReplicaId::new(1), SimTime::ZERO);
        let mut sim: Simulation<Ping> = Simulation::with_faults(NetworkConfig::lan(), faults, 1);
        let a = NodeId::replica(0);
        let b = NodeId::replica(1);
        sim.add_actor(a, bouncer(b, true));
        sim.add_actor(b, bouncer(a, false));
        sim.run_to_completion();
        let b_state: &Bouncer = sim.actor_as(b).unwrap();
        // The crashed node never processed anything.
        assert!(b_state.arrivals.is_empty());
    }

    /// A node that records recovery firings and answers pings afterwards.
    struct Phoenix {
        arrivals: Vec<SimTime>,
        recovered_at: Option<SimTime>,
    }
    impl Actor<Ping> for Phoenix {
        fn on_message(&mut self, _f: NodeId, _m: Ping, ctx: &mut Context<'_, Ping>) {
            self.arrivals.push(ctx.now());
        }
        fn on_recover(&mut self, ctx: &mut Context<'_, Ping>) {
            self.recovered_at = Some(ctx.now());
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Sends one ping at every timer tick so traffic spans the crash window.
    struct Ticker {
        peer: NodeId,
        remaining: u32,
    }
    impl Actor<Ping> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.set_timer(Duration::from_millis(100), 0);
        }
        fn on_message(&mut self, _f: NodeId, _m: Ping, _c: &mut Context<'_, Ping>) {}
        fn on_timer(&mut self, _tag: u64, ctx: &mut Context<'_, Ping>) {
            ctx.send(self.peer, Ping { hops: 0, bytes: 64 });
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.set_timer(Duration::from_millis(100), 0);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn crash_recover_node_goes_silent_then_resumes() {
        let crash_at = SimTime::from_millis(250);
        let recover_at = SimTime::from_millis(650);
        let faults = FaultPlan::none().with_crash_recover(ReplicaId::new(1), crash_at, recover_at);
        let mut sim: Simulation<Ping> = Simulation::with_faults(NetworkConfig::lan(), faults, 9);
        let target = NodeId::replica(1);
        sim.add_actor(
            NodeId::replica(0),
            Box::new(Ticker {
                peer: target,
                remaining: 10,
            }),
        );
        sim.add_actor(
            target,
            Box::new(Phoenix {
                arrivals: Vec::new(),
                recovered_at: None,
            }),
        );
        sim.run_to_completion();
        let phoenix: &Phoenix = sim.actor_as(target).unwrap();
        assert_eq!(phoenix.recovered_at, Some(recover_at));
        // Pings sent at ~100/200 ms arrive; those landing in the crash window
        // are dropped; ticks after recovery arrive again.
        assert!(phoenix.arrivals.iter().any(|t| *t < crash_at));
        assert!(phoenix
            .arrivals
            .iter()
            .all(|t| *t < crash_at || *t >= recover_at));
        assert!(phoenix.arrivals.iter().any(|t| *t >= recover_at));
    }

    #[test]
    fn run_until_respects_the_deadline() {
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::wan(), 11);
        let a = NodeId::replica(0);
        let b = NodeId::replica(2);
        sim.add_actor(a, bouncer(b, true));
        sim.add_actor(b, bouncer(a, false));
        let deadline = SimTime::from_millis(100);
        let report = sim.run_until(deadline);
        assert!(report.end_time <= SimTime::from_millis(100) || report.end_time == deadline);
        // Continuing afterwards processes the rest.
        let final_report = sim.run_to_completion();
        assert!(final_report.events_processed >= report.events_processed);
    }

    /// Actor used to test timers and cancellation.
    struct TimerUser {
        fired: Vec<u64>,
        cancel_second: bool,
    }

    impl Actor<Ping> for TimerUser {
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.set_timer(Duration::from_millis(10), 1);
            let second = ctx.set_timer(Duration::from_millis(20), 2);
            if self.cancel_second {
                ctx.cancel_timer(second);
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: Ping, _ctx: &mut Context<'_, Ping>) {}
        fn on_timer(&mut self, tag: u64, _ctx: &mut Context<'_, Ping>) {
            self.fired.push(tag);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn timers_fire_and_cancel() {
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::lan(), 3);
        let n = NodeId::replica(0);
        sim.add_actor(
            n,
            Box::new(TimerUser {
                fired: Vec::new(),
                cancel_second: true,
            }),
        );
        sim.run_to_completion();
        let state: &TimerUser = sim.actor_as(n).unwrap();
        assert_eq!(state.fired, vec![1]);
    }

    /// Regression test for the cancelled-timer leak: tombstones must not
    /// survive the timer's pop, cancelling an already-fired timer must not
    /// create one, and crashed nodes must not pin theirs forever.
    struct TimerChurner {
        stale: Option<TimerId>,
        churns: u32,
    }

    impl Actor<Ping> for TimerChurner {
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            // A timer that fires, whose handle we cancel *afterwards*.
            self.stale = Some(ctx.set_timer(Duration::from_millis(1), 1));
            // Set-and-cancel churn within one handler.
            for i in 0..self.churns {
                let id = ctx.set_timer(Duration::from_millis(5 + u64::from(i)), 100 + u64::from(i));
                ctx.cancel_timer(id);
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: Ping, _ctx: &mut Context<'_, Ping>) {}
        fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, Ping>) {
            if tag == 1 {
                // Cancel the handle of the timer that just fired: a no-op
                // that must leave no tombstone behind.
                ctx.cancel_timer(self.stale.expect("set in on_start"));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn cancelled_timer_bookkeeping_does_not_leak() {
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::lan(), 5);
        sim.add_actor(
            NodeId::replica(0),
            Box::new(TimerChurner {
                stale: None,
                churns: 200,
            }),
        );
        // A node that cancels a timer and then crashes before it would fire:
        // the pop must still clear the tombstone.
        struct CancelThenCrash;
        impl Actor<Ping> for CancelThenCrash {
            fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
                let id = ctx.set_timer(Duration::from_secs(2), 9);
                ctx.cancel_timer(id);
            }
            fn on_message(&mut self, _f: NodeId, _m: Ping, _c: &mut Context<'_, Ping>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let faults = FaultPlan::none().with_crash(ReplicaId::new(1), SimTime::from_secs(1));
        let mut crash_sim: Simulation<Ping> =
            Simulation::with_faults(NetworkConfig::lan(), faults, 6);
        crash_sim.add_actor(NodeId::replica(1), Box::new(CancelThenCrash));

        sim.run_to_completion();
        crash_sim.run_to_completion();
        assert!(sim.cancelled_timers.is_empty(), "tombstones leaked");
        assert!(sim.armed_timers.is_empty(), "armed set leaked");
        assert!(crash_sim.cancelled_timers.is_empty(), "crash leaked");
        assert!(crash_sim.armed_timers.is_empty(), "crash leaked armed");
    }

    #[test]
    fn max_events_limits_livelock() {
        // Two actors that ping each other forever.
        struct Forever {
            peer: NodeId,
        }
        impl Actor<Ping> for Forever {
            fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
                ctx.send(self.peer, Ping { hops: 0, bytes: 8 });
            }
            fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<'_, Ping>) {
                ctx.send(from, msg);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::lan(), 5);
        sim.set_max_events(500);
        sim.add_actor(
            NodeId::replica(0),
            Box::new(Forever {
                peer: NodeId::replica(1),
            }),
        );
        sim.add_actor(
            NodeId::replica(1),
            Box::new(Forever {
                peer: NodeId::replica(0),
            }),
        );
        let report = sim.run_to_completion();
        assert_eq!(report.events_processed, 500);
    }

    #[test]
    fn nic_serialization_queues_large_messages() {
        // Sending two large messages back-to-back: the second one's delivery
        // is delayed by the first one's serialization time.
        struct Burst {
            peer: NodeId,
        }
        impl Actor<Ping> for Burst {
            fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
                ctx.send(
                    self.peer,
                    Ping {
                        hops: 0,
                        bytes: 2_000_000,
                    },
                );
                ctx.send(
                    self.peer,
                    Ping {
                        hops: 1,
                        bytes: 2_000_000,
                    },
                );
            }
            fn on_message(&mut self, _f: NodeId, _m: Ping, _c: &mut Context<'_, Ping>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        struct Sink {
            arrivals: Vec<SimTime>,
        }
        impl Actor<Ping> for Sink {
            fn on_message(&mut self, _f: NodeId, _m: Ping, ctx: &mut Context<'_, Ping>) {
                self.arrivals.push(ctx.now());
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::lan(), 9);
        let a = NodeId::replica(0);
        let b = NodeId::replica(1);
        sim.add_actor(a, Box::new(Burst { peer: b }));
        sim.add_actor(
            b,
            Box::new(Sink {
                arrivals: Vec::new(),
            }),
        );
        sim.run_to_completion();
        let sink: &Sink = sim.actor_as(b).unwrap();
        assert_eq!(sink.arrivals.len(), 2);
        let gap = sink.arrivals[1] - sink.arrivals[0];
        // 2 MB at 1 Gbps is ~16 ms of serialization; the gap reflects it.
        assert!(gap >= Duration::from_millis(14), "gap was {gap}");
    }

    /// A sender that broadcasts one message to all peers, either through the
    /// coalesced multicast or as explicit per-recipient unicasts.
    struct Broadcaster {
        peers: Vec<NodeId>,
        coalesce: bool,
    }
    impl Actor<Ping> for Broadcaster {
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            let msg = Ping {
                hops: 0,
                bytes: 1_000,
            };
            if self.coalesce {
                ctx.multicast(self.peers.iter().copied(), msg);
            } else {
                for &p in &self.peers {
                    ctx.send(p, msg.clone());
                }
            }
        }
        fn on_message(&mut self, _f: NodeId, _m: Ping, _c: &mut Context<'_, Ping>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
    }
    struct ArrivalSink {
        arrivals: Vec<SimTime>,
    }
    impl Actor<Ping> for ArrivalSink {
        fn on_message(&mut self, _f: NodeId, _m: Ping, ctx: &mut Context<'_, Ping>) {
            self.arrivals.push(ctx.now());
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn broadcast_sim(coalesce: bool, peers: u32) -> Simulation<Ping> {
        let mut sim: Simulation<Ping> = Simulation::new(NetworkConfig::wan(), 17);
        let targets: Vec<NodeId> = (1..=peers).map(NodeId::replica).collect();
        sim.add_actor(
            NodeId::replica(0),
            Box::new(Broadcaster {
                peers: targets.clone(),
                coalesce,
            }),
        );
        for t in targets {
            sim.add_actor(
                t,
                Box::new(ArrivalSink {
                    arrivals: Vec::new(),
                }),
            );
        }
        sim
    }

    #[test]
    fn coalesced_multicast_matches_per_recipient_arrival_times() {
        // The batch path must charge the exact same NIC + propagation math as
        // n unicasts: every recipient sees identical arrival times.
        let peers = 12u32;
        let mut batched = broadcast_sim(true, peers);
        let mut unicast = broadcast_sim(false, peers);
        let batched_report = batched.run_to_completion();
        let unicast_report = unicast.run_to_completion();
        for p in 1..=peers {
            let b: &ArrivalSink = batched.actor_as(NodeId::replica(p)).unwrap();
            let u: &ArrivalSink = unicast.actor_as(NodeId::replica(p)).unwrap();
            assert_eq!(b.arrivals, u.arrivals, "recipient {p} diverged");
        }
        assert_eq!(batched_report.messages_sent, unicast_report.messages_sent);
        assert_eq!(batched_report.bytes_sent, unicast_report.bytes_sent);
        // The whole broadcast occupied one queue entry instead of n.
        assert!(
            batched_report.peak_queue_len < unicast_report.peak_queue_len,
            "batched peak {} vs unicast peak {}",
            batched_report.peak_queue_len,
            unicast_report.peak_queue_len
        );
    }

    #[test]
    fn coalesced_multicast_skips_crashed_recipients() {
        let faults = FaultPlan::none().with_crash(ReplicaId::new(2), SimTime::ZERO);
        let mut sim: Simulation<Ping> = Simulation::with_faults(NetworkConfig::lan(), faults, 3);
        let targets: Vec<NodeId> = (1..=3).map(NodeId::replica).collect();
        sim.add_actor(
            NodeId::replica(0),
            Box::new(Broadcaster {
                peers: targets.clone(),
                coalesce: true,
            }),
        );
        for t in targets {
            sim.add_actor(
                t,
                Box::new(ArrivalSink {
                    arrivals: Vec::new(),
                }),
            );
        }
        sim.run_to_completion();
        let crashed: &ArrivalSink = sim.actor_as(NodeId::replica(2)).unwrap();
        assert!(crashed.arrivals.is_empty());
        for p in [1u32, 3] {
            let alive: &ArrivalSink = sim.actor_as(NodeId::replica(p)).unwrap();
            assert_eq!(alive.arrivals.len(), 1, "replica {p} missed delivery");
        }
    }
}
