//! The actor abstraction: protocol nodes (replicas, clients) implement
//! [`Actor`] and interact with the simulation exclusively through the
//! [`Context`] handed to every event handler.

use crate::node::NodeId;
use crate::stats::StatsCollector;
use orthrus_types::rng::StdRng;
use orthrus_types::{Duration, SimTime};
use std::any::Any;

/// Handle of a pending timer, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub u64);

/// A buffered outbound transmission: a unicast to one node, or a coalesced
/// multicast the engine carries through its queue as a *single* event.
#[derive(Debug, PartialEq)]
pub(crate) enum Outbound<M> {
    /// One message to one recipient.
    One(NodeId, M),
    /// One message to many recipients (at least two), delivered in the given
    /// deterministic order.
    Many(Vec<NodeId>, M),
}

/// A protocol node driven by the simulation engine.
///
/// Handlers must not block; any work a node wants to do "later" is expressed
/// by sending itself a message or setting a timer. All state lives inside the
/// actor, so two actors never share memory — exactly like separate processes
/// on separate machines. Actors are `Send` so the parallel engine can hand
/// each one to a worker thread for a lookahead window (`ARCHITECTURE.md`,
/// "Parallel engine").
pub trait Actor<M>: Any + Send {
    /// Called once when the simulation starts (or when the actor is added to
    /// a running simulation).
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called when a message from `from` is delivered to this actor.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Context<'_, M>);

    /// Called when a timer set by this actor fires (and was not cancelled).
    /// `tag` is the value passed to [`Context::set_timer`].
    fn on_timer(&mut self, _tag: u64, _ctx: &mut Context<'_, M>) {}

    /// Called when the actor restarts after a crash-recover fault (the
    /// `recover_at` instant of its `CrashRecoverSpec`). Everything delivered
    /// during the crash window was dropped; a recovering protocol node
    /// typically re-arms its timers and requests a state transfer from its
    /// peers here. The default does nothing.
    fn on_recover(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Up-cast for post-simulation inspection (the engine exposes actors as
    /// trait objects; tests and harnesses use this to read final state).
    fn as_any(&self) -> &dyn Any;
}

/// Everything an actor may do while handling an event: read the clock, send
/// messages, set and cancel timers, draw randomness and record metrics.
///
/// Sends and timers are buffered and applied by the engine after the handler
/// returns, which keeps handlers free of re-entrancy concerns.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) self_id: NodeId,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) stats: &'a mut StatsCollector,
    pub(crate) outbox: &'a mut Vec<Outbound<M>>,
    pub(crate) timer_requests: &'a mut Vec<(Duration, u64, TimerId)>,
    pub(crate) cancel_requests: &'a mut Vec<u64>,
    pub(crate) next_timer_id: &'a mut u64,
}

impl<'a, M> Context<'a, M> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The identity of the actor handling this event.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// Send `msg` to `to`. Delivery time is decided by the network model
    /// (propagation + serialization + processing, with straggler slowdown).
    /// Sending to oneself is allowed and arrives after the loopback delay.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push(Outbound::One(to, msg));
    }

    /// Send the same message to every node in `targets`.
    ///
    /// The whole fan-out travels through the engine's queue as *one*
    /// coalesced event holding the single original message, so an `n`-way
    /// broadcast adds one queue entry instead of `n` and performs zero clones
    /// up front. Per-recipient copies (a reference-count bump with the
    /// workspace's `Arc`-backed payloads — see `ARCHITECTURE.md`) are made
    /// only when each delivery is dispatched, and per-link latency is sampled
    /// in the deterministic order recipients appear in `targets`.
    pub fn multicast<I>(&mut self, targets: I, msg: M)
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut recipients: Vec<NodeId> = targets.into_iter().collect();
        match recipients.len() {
            0 => {}
            1 => self.outbox.push(Outbound::One(recipients.remove(0), msg)),
            _ => self.outbox.push(Outbound::Many(recipients, msg)),
        }
    }

    /// Arm a timer that fires after `delay` with the given `tag`. Returns a
    /// handle that can be used to cancel it.
    pub fn set_timer(&mut self, delay: Duration, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.timer_requests.push((delay, tag, id));
        id
    }

    /// Cancel a previously armed timer. Cancelling an already-fired timer is
    /// a no-op (the engine checks the timer is still armed, so stale handles
    /// leave no bookkeeping behind).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.cancel_requests.push(id.0);
    }

    /// Deterministic per-node random number generator.
    #[inline]
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// The shared metrics collector.
    #[inline]
    pub fn stats(&mut self) -> &mut StatsCollector {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::rng::Rng;

    #[allow(clippy::type_complexity)]
    fn make_parts() -> (
        StdRng,
        StatsCollector,
        Vec<Outbound<u64>>,
        Vec<(Duration, u64, TimerId)>,
        Vec<u64>,
        u64,
    ) {
        (
            StdRng::seed_from_u64(1),
            StatsCollector::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            0,
        )
    }

    #[test]
    fn context_buffers_sends_and_timers() {
        let (mut rng, mut stats, mut outbox, mut timers, mut cancels, mut next) = make_parts();
        let mut ctx = Context {
            now: SimTime::from_millis(10),
            self_id: NodeId::replica(0),
            rng: &mut rng,
            stats: &mut stats,
            outbox: &mut outbox,
            timer_requests: &mut timers,
            cancel_requests: &mut cancels,
            next_timer_id: &mut next,
        };
        assert_eq!(ctx.now(), SimTime::from_millis(10));
        assert_eq!(ctx.id(), NodeId::replica(0));
        ctx.send(NodeId::replica(1), 42u64);
        ctx.multicast([NodeId::replica(2), NodeId::replica(3)], 7u64);
        let t1 = ctx.set_timer(Duration::from_millis(5), 99);
        let t2 = ctx.set_timer(Duration::from_millis(6), 100);
        ctx.cancel_timer(t1);
        let _: u32 = ctx.rng().gen();
        ctx.stats().block_delivered();

        assert_eq!(outbox.len(), 2);
        assert_eq!(outbox[0], Outbound::One(NodeId::replica(1), 42));
        assert_eq!(
            outbox[1],
            Outbound::Many(vec![NodeId::replica(2), NodeId::replica(3)], 7)
        );
        assert_eq!(timers.len(), 2);
        assert_ne!(t1, t2);
        assert_eq!(cancels, vec![t1.0]);
        assert_eq!(stats.blocks_delivered, 1);
        assert_eq!(next, 2);
    }

    #[test]
    fn multicast_collapses_degenerate_fanouts() {
        let (mut rng, mut stats, mut outbox, mut timers, mut cancels, mut next) = make_parts();
        let mut ctx = Context {
            now: SimTime::ZERO,
            self_id: NodeId::replica(0),
            rng: &mut rng,
            stats: &mut stats,
            outbox: &mut outbox,
            timer_requests: &mut timers,
            cancel_requests: &mut cancels,
            next_timer_id: &mut next,
        };
        ctx.multicast([], 1u64);
        ctx.multicast([NodeId::replica(5)], 2u64);
        assert_eq!(outbox.len(), 1);
        assert_eq!(outbox[0], Outbound::One(NodeId::replica(5), 2));
    }
}
