//! The actor abstraction: protocol nodes (replicas, clients) implement
//! [`Actor`] and interact with the simulation exclusively through the
//! [`Context`] handed to every event handler.

use crate::node::NodeId;
use crate::stats::StatsCollector;
use orthrus_types::rng::StdRng;
use orthrus_types::{Duration, SimTime};
use std::any::Any;
use std::collections::HashSet;

/// Handle of a pending timer, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub u64);

/// A protocol node driven by the simulation engine.
///
/// Handlers must not block; any work a node wants to do "later" is expressed
/// by sending itself a message or setting a timer. All state lives inside the
/// actor, so two actors never share memory — exactly like separate processes
/// on separate machines.
pub trait Actor<M>: Any {
    /// Called once when the simulation starts (or when the actor is added to
    /// a running simulation).
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called when a message from `from` is delivered to this actor.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Context<'_, M>);

    /// Called when a timer set by this actor fires (and was not cancelled).
    /// `tag` is the value passed to [`Context::set_timer`].
    fn on_timer(&mut self, _tag: u64, _ctx: &mut Context<'_, M>) {}

    /// Up-cast for post-simulation inspection (the engine exposes actors as
    /// trait objects; tests and harnesses use this to read final state).
    fn as_any(&self) -> &dyn Any;
}

/// Everything an actor may do while handling an event: read the clock, send
/// messages, set and cancel timers, draw randomness and record metrics.
///
/// Sends and timers are buffered and applied by the engine after the handler
/// returns, which keeps handlers free of re-entrancy concerns.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) self_id: NodeId,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) stats: &'a mut StatsCollector,
    pub(crate) outbox: &'a mut Vec<(NodeId, M)>,
    pub(crate) timer_requests: &'a mut Vec<(Duration, u64, TimerId)>,
    pub(crate) cancelled_timers: &'a mut HashSet<u64>,
    pub(crate) next_timer_id: &'a mut u64,
}

impl<'a, M> Context<'a, M> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The identity of the actor handling this event.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// Send `msg` to `to`. Delivery time is decided by the network model
    /// (propagation + serialization + processing, with straggler slowdown).
    /// Sending to oneself is allowed and arrives after the loopback delay.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Send the same message to every node in `targets`.
    ///
    /// With `Arc`-backed message payloads (the workspace's convention — see
    /// `ARCHITECTURE.md`) each per-recipient clone is a reference-count bump,
    /// and the original is *moved* to the final recipient, so an `n`-way
    /// broadcast performs `n - 1` cheap clones and zero deep copies.
    pub fn multicast<I>(&mut self, targets: I, msg: M)
    where
        M: Clone,
        I: IntoIterator<Item = NodeId>,
    {
        let mut iter = targets.into_iter();
        let Some(mut current) = iter.next() else {
            return;
        };
        for next in iter {
            self.outbox.push((current, msg.clone()));
            current = next;
        }
        self.outbox.push((current, msg));
    }

    /// Arm a timer that fires after `delay` with the given `tag`. Returns a
    /// handle that can be used to cancel it.
    pub fn set_timer(&mut self, delay: Duration, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.timer_requests.push((delay, tag, id));
        id
    }

    /// Cancel a previously armed timer. Cancelling an already-fired timer is
    /// a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.cancelled_timers.insert(id.0);
    }

    /// Deterministic per-node random number generator.
    #[inline]
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// The shared metrics collector.
    #[inline]
    pub fn stats(&mut self) -> &mut StatsCollector {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::rng::Rng;

    #[allow(clippy::type_complexity)]
    fn make_parts() -> (
        StdRng,
        StatsCollector,
        Vec<(NodeId, u64)>,
        Vec<(Duration, u64, TimerId)>,
        HashSet<u64>,
        u64,
    ) {
        (
            StdRng::seed_from_u64(1),
            StatsCollector::new(),
            Vec::new(),
            Vec::new(),
            HashSet::new(),
            0,
        )
    }

    #[test]
    fn context_buffers_sends_and_timers() {
        let (mut rng, mut stats, mut outbox, mut timers, mut cancelled, mut next) = make_parts();
        let mut ctx = Context {
            now: SimTime::from_millis(10),
            self_id: NodeId::replica(0),
            rng: &mut rng,
            stats: &mut stats,
            outbox: &mut outbox,
            timer_requests: &mut timers,
            cancelled_timers: &mut cancelled,
            next_timer_id: &mut next,
        };
        assert_eq!(ctx.now(), SimTime::from_millis(10));
        assert_eq!(ctx.id(), NodeId::replica(0));
        ctx.send(NodeId::replica(1), 42u64);
        ctx.multicast([NodeId::replica(2), NodeId::replica(3)], 7u64);
        let t1 = ctx.set_timer(Duration::from_millis(5), 99);
        let t2 = ctx.set_timer(Duration::from_millis(6), 100);
        ctx.cancel_timer(t1);
        let _: u32 = ctx.rng().gen();
        ctx.stats().block_delivered();

        assert_eq!(outbox.len(), 3);
        assert_eq!(outbox[0], (NodeId::replica(1), 42));
        assert_eq!(timers.len(), 2);
        assert_ne!(t1, t2);
        assert!(cancelled.contains(&t1.0));
        assert!(!cancelled.contains(&t2.0));
        assert_eq!(stats.blocks_delivered, 1);
        assert_eq!(next, 2);
    }
}
