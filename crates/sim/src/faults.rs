//! Fault plans: crashes, stragglers and message suppression.
//!
//! The paper evaluates three fault scenarios:
//!
//! * **Stragglers** (§VII-B): one instance runs 10× slower than the others.
//!   We model this by slowing down the replica that leads the straggling
//!   instance — its message processing, serialization and propagation are all
//!   multiplied by the slowdown factor.
//! * **Detectable faults** (§VII-E): replicas crash at a given time; the view
//!   change mechanism detects them and replaces them as leaders.
//! * **Undetectable faults** (§VII-E): Byzantine replicas keep proposing in
//!   the instance they lead (so no timeout fires) but stop participating in
//!   other instances. The *behavioural* part lives in `orthrus-core`; the
//!   fault plan records which replicas are flagged so that test assertions
//!   and the harness can find them.

use orthrus_types::{OrthrusError, ReplicaId, SimTime};

/// A straggler: a replica whose processing and links are `factor`× slower.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerSpec {
    /// The slow replica.
    pub replica: ReplicaId,
    /// Slowdown factor (the paper uses 10.0).
    pub factor: f64,
}

impl StragglerSpec {
    /// The paper's standard straggler: the given replica is 10× slower.
    pub fn paper_default(replica: ReplicaId) -> Self {
        Self {
            replica,
            factor: 10.0,
        }
    }
}

/// A crash fault: the replica stops sending and receiving at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// The crashing replica.
    pub replica: ReplicaId,
    /// Virtual time of the crash.
    pub at: SimTime,
}

/// A crash-recover fault: the replica is silent during `[crash_at,
/// recover_at)` and restarts at `recover_at` with empty volatile state. The
/// engine fires the actor's `on_recover` hook at the restart instant; a
/// replica then rejoins by fetching a state transfer from its peers (the
/// checkpoint subsystem's recovery path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashRecoverSpec {
    /// The replica that crashes and later restarts.
    pub replica: ReplicaId,
    /// Virtual time of the crash.
    pub crash_at: SimTime,
    /// Virtual time of the restart (exclusive end of the silent window).
    pub recover_at: SimTime,
}

/// The complete fault plan for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Replicas that crash permanently (detectable faults).
    pub crashes: Vec<CrashSpec>,
    /// Replicas that crash and later restart (crash-recovery with state
    /// transfer).
    pub crash_recoveries: Vec<CrashRecoverSpec>,
    /// Straggler replicas and their slowdown factors.
    pub stragglers: Vec<StragglerSpec>,
    /// Replicas flagged as "selfish" Byzantine nodes: they keep leading their
    /// own instance but ignore every other instance (undetectable faults).
    pub selfish: Vec<ReplicaId>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with a single 10× straggler, as in the paper's straggler
    /// experiments (the straggler is the leader of instance 0, i.e. replica
    /// 0, unless stated otherwise).
    pub fn one_straggler(replica: ReplicaId) -> Self {
        Self {
            stragglers: vec![StragglerSpec::paper_default(replica)],
            ..Self::default()
        }
    }

    /// Add a crash fault.
    pub fn with_crash(mut self, replica: ReplicaId, at: SimTime) -> Self {
        self.crashes.push(CrashSpec { replica, at });
        self
    }

    /// Add a crash-recover fault: `replica` is silent during `[crash_at,
    /// recover_at)` and restarts afterwards.
    pub fn with_crash_recover(
        mut self,
        replica: ReplicaId,
        crash_at: SimTime,
        recover_at: SimTime,
    ) -> Self {
        self.crash_recoveries.push(CrashRecoverSpec {
            replica,
            crash_at,
            recover_at,
        });
        self
    }

    /// Add a straggler.
    pub fn with_straggler(mut self, replica: ReplicaId, factor: f64) -> Self {
        self.stragglers.push(StragglerSpec { replica, factor });
        self
    }

    /// Flag a replica as a selfish (undetectable) Byzantine node.
    pub fn with_selfish(mut self, replica: ReplicaId) -> Self {
        self.selfish.push(replica);
        self
    }

    /// Is `replica` crashed at time `now`? Permanent crashes hold from their
    /// crash time onwards; crash-recover faults hold only inside their
    /// `[crash_at, recover_at)` window.
    pub fn is_crashed(&self, replica: ReplicaId, now: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|c| c.replica == replica && now >= c.at)
            || self
                .crash_recoveries
                .iter()
                .any(|c| c.replica == replica && now >= c.crash_at && now < c.recover_at)
    }

    /// The crash-recover spec of `replica`, if it has one.
    pub fn recovery_of(&self, replica: ReplicaId) -> Option<&CrashRecoverSpec> {
        self.crash_recoveries.iter().find(|c| c.replica == replica)
    }

    /// The slowdown factor of `replica` (1.0 if it is not a straggler).
    pub fn slowdown(&self, replica: ReplicaId) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.replica == replica)
            .map(|s| s.factor)
            .fold(1.0, f64::max)
    }

    /// Is `replica` flagged as a selfish Byzantine node?
    pub fn is_selfish(&self, replica: ReplicaId) -> bool {
        self.selfish.contains(&replica)
    }

    /// Check the plan against a deployment of `num_replicas` replicas: every
    /// named replica must exist and every straggler factor must be a positive
    /// finite slowdown. The scenario driver calls this before building a
    /// simulation, so a bad plan surfaces as a descriptive
    /// [`OrthrusError::Config`] instead of silently misbehaving mid-run.
    pub fn validate(&self, num_replicas: u32) -> Result<(), OrthrusError> {
        let check_replica = |replica: ReplicaId, role: &str| {
            if replica.value() >= num_replicas {
                return Err(OrthrusError::Config(format!(
                    "fault plan names {role} replica {replica} but the deployment has only \
                     {num_replicas} replicas (valid ids: 0..{num_replicas})"
                )));
            }
            Ok(())
        };
        for crash in &self.crashes {
            check_replica(crash.replica, "crashed")?;
        }
        let mut seen_recoveries: Vec<ReplicaId> = Vec::new();
        for recovery in &self.crash_recoveries {
            check_replica(recovery.replica, "crash-recovering")?;
            if recovery.recover_at <= recovery.crash_at {
                return Err(OrthrusError::Config(format!(
                    "crash-recover fault for replica {} must recover strictly after it \
                     crashes (crash at {}, recover at {})",
                    recovery.replica, recovery.crash_at, recovery.recover_at
                )));
            }
            if self.crashes.iter().any(|c| c.replica == recovery.replica) {
                return Err(OrthrusError::Config(format!(
                    "replica {} is named both as a permanent crash and a crash-recover \
                     fault; pick one",
                    recovery.replica
                )));
            }
            if seen_recoveries.contains(&recovery.replica) {
                return Err(OrthrusError::Config(format!(
                    "replica {} has more than one crash-recover window; only one is \
                     supported per run",
                    recovery.replica
                )));
            }
            seen_recoveries.push(recovery.replica);
        }
        for straggler in &self.stragglers {
            check_replica(straggler.replica, "straggler")?;
            if !straggler.factor.is_finite() || straggler.factor <= 0.0 {
                return Err(OrthrusError::Config(format!(
                    "straggler factor for replica {} must be a positive finite slowdown, got {}",
                    straggler.replica, straggler.factor
                )));
            }
        }
        for &selfish in &self.selfish {
            check_replica(selfish, "selfish")?;
        }
        Ok(())
    }

    /// Would running the half-open window `[start, end)` in parallel risk
    /// diverging from the serial walk? The parallel engine calls this before
    /// every lookahead window and falls back to the serial path on `true`.
    ///
    /// Conservative by design: stragglers and selfish replicas perturb
    /// latency/behaviour for the whole run, so any such plan is a permanent
    /// hazard; a permanent crash makes every window from its onset onward
    /// serial; a crash-recover fault covers `[crash_at, recover_at)` (windows
    /// entirely after the restart may run parallel again).
    pub fn parallel_hazard_in(&self, start: SimTime, end: SimTime) -> bool {
        if !self.stragglers.is_empty() || !self.selfish.is_empty() {
            return true;
        }
        if self.crashes.iter().any(|c| end > c.at) {
            return true;
        }
        self.crash_recoveries
            .iter()
            .any(|c| end > c.crash_at && start < c.recover_at)
    }

    /// Number of replicas that are faulty in any way at `now`.
    pub fn faulty_count(&self, now: SimTime) -> usize {
        let mut faulty: Vec<ReplicaId> = self
            .crashes
            .iter()
            .filter(|c| now >= c.at)
            .map(|c| c.replica)
            .chain(
                self.crash_recoveries
                    .iter()
                    .filter(|c| now >= c.crash_at && now < c.recover_at)
                    .map(|c| c.replica),
            )
            .chain(self.selfish.iter().copied())
            .collect();
        faulty.sort_unstable();
        faulty.dedup();
        faulty.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(id: u32) -> ReplicaId {
        ReplicaId::new(id)
    }

    #[test]
    fn empty_plan_has_no_effects() {
        let plan = FaultPlan::none();
        assert!(!plan.is_crashed(r(0), SimTime::from_secs(100)));
        assert_eq!(plan.slowdown(r(0)), 1.0);
        assert!(!plan.is_selfish(r(0)));
        assert_eq!(plan.faulty_count(SimTime::from_secs(100)), 0);
    }

    #[test]
    fn crash_takes_effect_at_its_time() {
        let plan = FaultPlan::none().with_crash(r(2), SimTime::from_secs(9));
        assert!(!plan.is_crashed(r(2), SimTime::from_secs(8)));
        assert!(plan.is_crashed(r(2), SimTime::from_secs(9)));
        assert!(plan.is_crashed(r(2), SimTime::from_secs(30)));
        assert!(!plan.is_crashed(r(3), SimTime::from_secs(30)));
    }

    #[test]
    fn straggler_slowdown_defaults_to_paper_factor() {
        let plan = FaultPlan::one_straggler(r(0));
        assert_eq!(plan.slowdown(r(0)), 10.0);
        assert_eq!(plan.slowdown(r(1)), 1.0);
    }

    #[test]
    fn multiple_straggler_entries_take_the_worst() {
        let plan = FaultPlan::none()
            .with_straggler(r(1), 2.0)
            .with_straggler(r(1), 5.0);
        assert_eq!(plan.slowdown(r(1)), 5.0);
    }

    #[test]
    fn selfish_flags() {
        let plan = FaultPlan::none().with_selfish(r(4)).with_selfish(r(5));
        assert!(plan.is_selfish(r(4)));
        assert!(!plan.is_selfish(r(0)));
        assert_eq!(plan.faulty_count(SimTime::ZERO), 2);
    }

    #[test]
    fn validate_accepts_in_range_plans() {
        let plan = FaultPlan::none()
            .with_crash(r(1), SimTime::from_secs(9))
            .with_straggler(r(0), 10.0)
            .with_selfish(r(3));
        assert!(plan.validate(4).is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_replicas() {
        for plan in [
            FaultPlan::none().with_crash(r(4), SimTime::ZERO),
            FaultPlan::none().with_straggler(r(7), 10.0),
            FaultPlan::none().with_selfish(r(4)),
        ] {
            let err = plan.validate(4).unwrap_err();
            assert!(err.to_string().contains("replica"), "{err}");
        }
    }

    #[test]
    fn validate_rejects_non_positive_straggler_factors() {
        for factor in [0.0, -2.0, f64::NAN, f64::INFINITY] {
            let plan = FaultPlan::none().with_straggler(r(0), factor);
            assert!(plan.validate(4).is_err(), "factor {factor} accepted");
        }
    }

    #[test]
    fn crash_recover_window_is_half_open() {
        let plan = FaultPlan::none().with_crash_recover(
            r(2),
            SimTime::from_secs(5),
            SimTime::from_secs(9),
        );
        assert!(!plan.is_crashed(r(2), SimTime::from_secs(4)));
        assert!(plan.is_crashed(r(2), SimTime::from_secs(5)));
        assert!(plan.is_crashed(r(2), SimTime::from_millis(8_999)));
        assert!(!plan.is_crashed(r(2), SimTime::from_secs(9)));
        assert!(!plan.is_crashed(r(2), SimTime::from_secs(100)));
        assert_eq!(plan.faulty_count(SimTime::from_secs(6)), 1);
        assert_eq!(plan.faulty_count(SimTime::from_secs(10)), 0);
        assert_eq!(
            plan.recovery_of(r(2)).unwrap().recover_at,
            SimTime::from_secs(9)
        );
        assert!(plan.recovery_of(r(1)).is_none());
        assert!(plan.validate(4).is_ok());
    }

    #[test]
    fn crash_recover_validation_rejects_bad_windows() {
        // Recovery must come after the crash.
        let backwards = FaultPlan::none().with_crash_recover(
            r(1),
            SimTime::from_secs(9),
            SimTime::from_secs(9),
        );
        assert!(backwards.validate(4).is_err());
        // Out-of-range replica.
        let ghost = FaultPlan::none().with_crash_recover(
            r(7),
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        assert!(ghost.validate(4).is_err());
        // A replica cannot be both a permanent crash and a recovering one.
        let both = FaultPlan::none()
            .with_crash(r(1), SimTime::from_secs(1))
            .with_crash_recover(r(1), SimTime::from_secs(2), SimTime::from_secs(3));
        assert!(both.validate(4).is_err());
        // One recovery window per replica.
        let twice = FaultPlan::none()
            .with_crash_recover(r(1), SimTime::from_secs(1), SimTime::from_secs(2))
            .with_crash_recover(r(1), SimTime::from_secs(4), SimTime::from_secs(5));
        assert!(twice.validate(4).is_err());
    }

    #[test]
    fn parallel_hazard_windows() {
        let t = SimTime::from_secs;
        assert!(!FaultPlan::none().parallel_hazard_in(t(0), t(100)));
        // Stragglers and selfish nodes are hazards for the whole run.
        assert!(FaultPlan::one_straggler(r(0)).parallel_hazard_in(t(90), t(91)));
        assert!(FaultPlan::none()
            .with_selfish(r(1))
            .parallel_hazard_in(t(0), t(1)));
        // A permanent crash poisons every window from its onset onward.
        let crash = FaultPlan::none().with_crash(r(2), t(10));
        assert!(!crash.parallel_hazard_in(t(0), t(10)));
        assert!(crash.parallel_hazard_in(t(5), t(11)));
        assert!(crash.parallel_hazard_in(t(50), t(51)));
        // A crash-recover fault covers [crash_at, recover_at) only.
        let cr = FaultPlan::none().with_crash_recover(r(1), t(10), t(20));
        assert!(!cr.parallel_hazard_in(t(0), t(10)));
        assert!(cr.parallel_hazard_in(t(9), t(11)));
        assert!(cr.parallel_hazard_in(t(15), t(16)));
        assert!(cr.parallel_hazard_in(t(19), t(21)));
        assert!(!cr.parallel_hazard_in(t(20), t(30)));
    }

    #[test]
    fn faulty_count_deduplicates() {
        let plan = FaultPlan::none()
            .with_crash(r(1), SimTime::ZERO)
            .with_selfish(r(1));
        assert_eq!(plan.faulty_count(SimTime::from_secs(1)), 1);
    }
}
