//! Node identifiers and message payload sizing.

use orthrus_types::{ClientId, ReplicaId};
use std::fmt;

/// Identifier of a node participating in the simulation: either a consensus
/// replica or a client submitting transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeId {
    /// A consensus replica.
    Replica(ReplicaId),
    /// A client machine.
    Client(ClientId),
}

impl NodeId {
    /// Shorthand constructor for a replica node.
    #[inline]
    pub const fn replica(id: u32) -> Self {
        NodeId::Replica(ReplicaId::new(id))
    }

    /// Shorthand constructor for a client node.
    #[inline]
    pub const fn client(id: u64) -> Self {
        NodeId::Client(ClientId::new(id))
    }

    /// Is this node a replica?
    #[inline]
    pub fn is_replica(&self) -> bool {
        matches!(self, NodeId::Replica(_))
    }

    /// The replica id, if this node is a replica.
    #[inline]
    pub fn as_replica(&self) -> Option<ReplicaId> {
        match self {
            NodeId::Replica(r) => Some(*r),
            NodeId::Client(_) => None,
        }
    }

    /// The client id, if this node is a client.
    #[inline]
    pub fn as_client(&self) -> Option<ClientId> {
        match self {
            NodeId::Client(c) => Some(*c),
            NodeId::Replica(_) => None,
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Replica(r) => write!(f, "replica-{}", r.value()),
            NodeId::Client(c) => write!(f, "client-{}", c.value()),
        }
    }
}

impl From<ReplicaId> for NodeId {
    fn from(value: ReplicaId) -> Self {
        NodeId::Replica(value)
    }
}

impl From<ClientId> for NodeId {
    fn from(value: ClientId) -> Self {
        NodeId::Client(value)
    }
}

/// Wire size of a message, used by the bandwidth model to charge
/// serialization delay on the sender's NIC.
///
/// Implementations should return the approximate number of bytes the message
/// would occupy on the wire (headers included); precision to the byte is not
/// required, only the right order of magnitude (a PBFT vote is a few hundred
/// bytes, a 4096-transaction block with 500-byte payloads is ~2 MB).
pub trait Payload {
    /// Approximate number of bytes this message occupies on the wire.
    fn wire_bytes(&self) -> u64;
}

impl Payload for () {
    fn wire_bytes(&self) -> u64 {
        0
    }
}

impl Payload for u64 {
    fn wire_bytes(&self) -> u64 {
        8
    }
}

impl<T: Payload> Payload for Box<T> {
    fn wire_bytes(&self) -> u64 {
        self.as_ref().wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_kinds() {
        let r = NodeId::replica(3);
        let c = NodeId::client(9);
        assert!(r.is_replica());
        assert!(!c.is_replica());
        assert_eq!(r.as_replica(), Some(ReplicaId::new(3)));
        assert_eq!(r.as_client(), None);
        assert_eq!(c.as_client(), Some(ClientId::new(9)));
        assert_eq!(c.as_replica(), None);
    }

    #[test]
    fn display() {
        assert_eq!(NodeId::replica(0).to_string(), "replica-0");
        assert_eq!(NodeId::client(7).to_string(), "client-7");
    }

    #[test]
    fn conversions() {
        assert_eq!(NodeId::from(ReplicaId::new(1)), NodeId::replica(1));
        assert_eq!(NodeId::from(ClientId::new(2)), NodeId::client(2));
    }

    #[test]
    fn ordering_groups_replicas_before_clients() {
        assert!(NodeId::replica(100) < NodeId::client(0));
        assert!(NodeId::replica(1) < NodeId::replica(2));
    }

    #[test]
    fn payload_impls() {
        assert_eq!(().wire_bytes(), 0);
        assert_eq!(42u64.wire_bytes(), 8);
        assert_eq!(Box::new(42u64).wire_bytes(), 8);
    }
}
