//! # Orthrus
//!
//! A Rust reproduction of *“Orthrus: Accelerating Multi-BFT Consensus through
//! Concurrent Partial Ordering of Transactions”* (ICDE 2025).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`types`] — the data model (objects, transactions, blocks, system state);
//! * [`sim`] — the deterministic discrete-event simulation substrate;
//! * [`sb`] — sequenced broadcast (PBFT) instances;
//! * [`ordering`] — partial/global logs and the global-ordering policies
//!   (pre-determined, DQBFT, Ladon);
//! * [`execution`] — the object store, escrow mechanism and executor;
//! * [`workload`] — synthetic Ethereum-like workload generation;
//! * [`core`] — the Orthrus replica, the baseline protocols and the
//!   [`core::runner::run_scenario`] entry point used by examples, tests and
//!   benchmarks.
//!
//! ## Quick start
//!
//! ```
//! use orthrus::prelude::*;
//!
//! // Four replicas on a simulated LAN running Orthrus over a small workload.
//! let scenario = Scenario::new(ProtocolKind::Orthrus, NetworkKind::Lan, 4)
//!     .with_workload(WorkloadConfig::small().with_transactions(200));
//! let outcome = run_scenario(&scenario);
//! assert_eq!(outcome.confirmed, outcome.submitted);
//! println!(
//!     "throughput {:.1} ktps, avg latency {}",
//!     outcome.throughput_ktps, outcome.avg_latency
//! );
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub use orthrus_core as core;
pub use orthrus_execution as execution;
pub use orthrus_ordering as ordering;
pub use orthrus_sb as sb;
pub use orthrus_sim as sim;
pub use orthrus_types as types;
pub use orthrus_workload as workload;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use orthrus_core::{
        run_scenario, run_scenarios, run_scenarios_with_threads, Scenario, ScenarioOutcome,
    };
    pub use orthrus_execution::{Executor, ObjectStore, TxOutcome};
    pub use orthrus_sim::{FaultPlan, NetworkConfig, QueueKind, StatsCollector};
    pub use orthrus_types::{
        Amount, Block, ClientId, Duration, InstanceId, NetworkKind, ObjectKey, ProtocolConfig,
        ProtocolKind, ReplicaId, SimTime, Transaction, TxId, TxKind,
    };
    pub use orthrus_workload::{Workload, WorkloadConfig};
}
