//! # Orthrus
//!
//! A Rust reproduction of *“Orthrus: Accelerating Multi-BFT Consensus through
//! Concurrent Partial Ordering of Transactions”* (ICDE 2025).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`types`] — the data model (objects, transactions, blocks, system state);
//! * [`sim`] — the deterministic discrete-event simulation substrate;
//! * [`sb`] — sequenced broadcast (PBFT) instances;
//! * [`ordering`] — partial/global logs and the global-ordering policies
//!   (pre-determined, DQBFT, Ladon);
//! * [`execution`] — the object store, escrow mechanism and executor;
//! * [`workload`] — synthetic Ethereum-like workload generation;
//! * [`core`] — the Orthrus replica, the baseline protocols and the fallible
//!   [`core::runner::run_scenario`] driver used by examples, tests and
//!   benchmarks;
//! * [`lab`] — declarative `.orth` experiment specs, sweep grids and the
//!   named registry behind the `orthrus` CLI.
//!
//! ## Quick start
//!
//! Scenarios are built with a fluent builder and run through a fallible
//! driver: cross-field invariants (protocol config, workload, fault plan)
//! are validated in one place before any event is simulated, and the
//! workload seed derives from the scenario seed — one seed, one trace.
//!
//! ```
//! use orthrus::prelude::*;
//!
//! // Four replicas on a simulated LAN running Orthrus over a small workload.
//! let scenario = Scenario::new(ProtocolKind::Orthrus, NetworkKind::Lan, 4)
//!     .with_workload(WorkloadConfig::small().with_transactions(200))
//!     .with_seed(7);
//! let outcome = run_scenario(&scenario).expect("a valid scenario");
//! assert_eq!(outcome.confirmed, outcome.submitted);
//! println!(
//!     "throughput {:.1} ktps, avg latency {}",
//!     outcome.throughput_ktps, outcome.avg_latency
//! );
//!
//! // Invalid configurations are rejected before the simulation starts.
//! let invalid = scenario.clone().with_num_clients(0);
//! assert!(run_scenario(&invalid).is_err());
//! ```
//!
//! The same experiment can live as data: a `.orth` spec file lowered through
//! [`lab`] (see `scenarios/` for the paper's figure grids):
//!
//! ```
//! use orthrus::lab::{parse, SpecScale};
//!
//! let spec = parse(
//!     "kind = scenario\n\
//!      name = smoke\n\
//!      \n\
//!      [scenario]\n\
//!      protocol = orthrus\n\
//!      network = lan\n\
//!      replicas = 4\n\
//!      accounts = 64\n\
//!      transactions = 200\n\
//!      shared_objects = 8\n\
//!      seed = 7\n",
//! )
//! .expect("valid spec");
//! let point = &spec.lower(SpecScale::Reduced).expect("lowers")[0];
//! let outcome = orthrus::core::run_scenario(&point.scenario).expect("runs");
//! assert_eq!(outcome.confirmed, outcome.submitted);
//! ```
//!
//! ## The `orthrus` CLI
//!
//! The `orthrus` binary drives the registry from the command line and emits
//! the same JSON shape as the bench harness:
//!
//! ```bash
//! orthrus list                               # every named spec
//! orthrus show fig3ab_wan_no_straggler       # canonical form + lowered grid
//! orthrus run quickstart --json out.json     # run and record a grid
//! orthrus run my_experiment.orth --threads 4 # run a spec file
//! orthrus lint                               # parse + validate all specs
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use orthrus_core as core;
pub use orthrus_execution as execution;
pub use orthrus_lab as lab;
pub use orthrus_ordering as ordering;
pub use orthrus_sb as sb;
pub use orthrus_sim as sim;
pub use orthrus_types as types;
pub use orthrus_workload as workload;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use orthrus_core::{
        run_scenario, run_scenarios, run_scenarios_with_threads, Scenario, ScenarioOutcome,
        StopCondition,
    };
    pub use orthrus_execution::{Executor, ObjectStore, TxOutcome};
    pub use orthrus_lab::{LoweredPoint, Spec, SpecScale};
    pub use orthrus_sim::{CrashRecoverSpec, FaultPlan, NetworkConfig, QueueKind, StatsCollector};
    pub use orthrus_types::{
        Amount, Block, ClientId, Duration, EngineMode, ExecutionMode, InstanceId, NetworkKind,
        ObjectKey, OrthrusError, ProtocolConfig, ProtocolKind, ReplicaId, SimTime,
        StableCheckpoint, Transaction, TxId, TxKind,
    };
    pub use orthrus_workload::{Workload, WorkloadConfig};
}
