//! The `orthrus` CLI: run the paper's experiment grids (and your own) from
//! declarative `.orth` spec files.
//!
//! ```text
//! orthrus list
//!     Show every named spec in the registry.
//!
//! orthrus show <name|file.orth>
//!     Print a spec in canonical form plus its lowered grid.
//!
//! orthrus run <name|file.orth> [--threads N] [--json PATH] [--full]
//!     Lower the spec and run every point on the sweep pool, printing the
//!     figure table and (optionally) writing the same JSON document the
//!     bench harness emits.
//!
//! orthrus lint [files...]
//!     Parse, round-trip and lower every registry spec (and any extra
//!     files), validating each resulting scenario. Exits non-zero on the
//!     first failure.
//!
//! orthrus analyze [--json PATH]
//!     Run the in-tree determinism & safety static analyzer
//!     (orthrus-analysis) over the workspace sources: nondeterministic
//!     hash-map iteration, stray wall-clock/RNG/thread use, unsafe without
//!     SAFETY:, and panic paths in the engine. Exits non-zero on any
//!     unsuppressed violation.
//! ```
//!
//! Specs are resolved against the built-in registry first; anything
//! containing a path separator or ending in `.orth` is read from disk.
//! `--full` (or `ORTHRUS_FULL_SCALE=1`) applies the spec's `[full_scale]`
//! overrides; `--threads` (or `ORTHRUS_SWEEP_THREADS`) sets the pool width.

use orthrus_bench::harness::{self, MeasuredPoint, SweepJob};
use orthrus_core::sweep_threads;
use orthrus_lab::{parse, registry, serialize, Spec, SpecScale};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  orthrus list\n  orthrus show <name|file.orth>\n  orthrus run <name|file.orth> \
         [--threads N] [--json PATH] [--full]\n  orthrus lint [files...]\n  orthrus analyze \
         [--json PATH]"
    );
    ExitCode::from(2)
}

/// Resolve a spec argument: registry name, or a file when it looks like a
/// path.
fn load_spec(arg: &str) -> Result<Spec, String> {
    let looks_like_path = arg.contains('/') || arg.contains('\\') || arg.ends_with(".orth");
    if !looks_like_path {
        if let Some(entry) = registry::find(arg) {
            return entry
                .spec()
                .map_err(|err| format!("registry spec {arg:?}: {err}"));
        }
    }
    match std::fs::read_to_string(arg) {
        Ok(text) => parse(&text).map_err(|err| format!("{arg}: {err}")),
        Err(io) if looks_like_path => Err(format!("{arg}: {io}")),
        Err(_) => {
            let known: Vec<&str> = registry::ENTRIES.iter().map(|e| e.name).collect();
            Err(format!(
                "no registry entry or file named {arg:?} (known specs: {})",
                known.join(", ")
            ))
        }
    }
}

fn x_label(spec: &Spec) -> String {
    match spec {
        Spec::Sweep(sweep) => sweep
            .x_axis
            .map(|axis| axis.name().to_string())
            .unwrap_or_else(|| "replicas".to_string()),
        Spec::Scenario(_) => "replicas".to_string(),
    }
}

fn cmd_list() -> ExitCode {
    println!("{:<34} {:<9} {:>7}  title", "name", "kind", "points");
    for entry in registry::ENTRIES {
        match entry.spec() {
            Ok(spec) => {
                let points = spec
                    .lower(SpecScale::Reduced)
                    .map(|p| p.len().to_string())
                    .unwrap_or_else(|_| "?".to_string());
                println!(
                    "{:<34} {:<9} {:>7}  {}",
                    entry.name,
                    spec.kind(),
                    points,
                    spec.title().unwrap_or("")
                );
            }
            Err(err) => {
                eprintln!("{:<34} UNPARSEABLE: {err}", entry.name);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_show(arg: &str) -> ExitCode {
    let spec = match load_spec(arg) {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", serialize(&spec));
    for scale in [SpecScale::Reduced, SpecScale::Full] {
        match spec.lower(scale) {
            Ok(points) => {
                println!("\n# {scale:?} grid: {} point(s)", points.len());
                for point in &points {
                    let s = &point.scenario;
                    println!(
                        "#   {:<8} x={:<8} {} {} replicas, {} txs, seed {}",
                        point.label,
                        point.x,
                        s.network,
                        s.config.num_replicas,
                        s.workload.num_transactions,
                        s.seed
                    );
                }
            }
            Err(err) => {
                eprintln!("error lowering at {scale:?}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut target: Option<&str> = None;
    let mut threads: Option<usize> = None;
    let mut json_path: Option<&str> = None;
    let mut scale = SpecScale::from_env();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threads" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => {
                    eprintln!("error: --threads needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--json" => match iter.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("error: --json needs a path");
                    return ExitCode::from(2);
                }
            },
            "--full" => scale = SpecScale::Full,
            other if target.is_none() && !other.starts_with('-') => target = Some(other),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(target) = target else {
        return usage();
    };
    let spec = match load_spec(target) {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };
    let points = match spec.lower(scale) {
        Ok(points) => points,
        Err(err) => {
            eprintln!("error lowering {}: {err}", spec.name());
            return ExitCode::FAILURE;
        }
    };
    // Validate the whole grid before running any point, so a bad spec fails
    // in milliseconds instead of after minutes of simulation.
    for point in &points {
        if let Err(err) = point.scenario.validate() {
            eprintln!(
                "error: {} (label {}, x {}): {err}",
                spec.name(),
                point.label,
                point.x
            );
            return ExitCode::FAILURE;
        }
    }
    let threads = threads.unwrap_or_else(sweep_threads);
    // Publish the resolved count so every in-process consumer of
    // `sweep_threads()` agrees with the CLI flag: the sweep pool, the
    // replicas' plog execution pools, and the conservative-window parallel
    // engine for scenarios with `engine_mode = parallel`.
    std::env::set_var("ORTHRUS_SWEEP_THREADS", threads.to_string());
    let jobs: Vec<SweepJob> = points.into_iter().map(SweepJob::from).collect();
    let label = x_label(&spec);
    let title = spec.title().unwrap_or_else(|| spec.name());
    harness::print_header(
        &format!("{title} ({scale:?} scale, {threads} thread(s))"),
        &label,
    );
    let measured: Vec<MeasuredPoint> = harness::measure_sweep_with_threads(&jobs, threads);
    for point in &measured {
        harness::print_row(point);
    }
    if let Some(path) = json_path {
        let doc = harness::series_json(spec.name(), &label, &measured);
        if let Err(err) = std::fs::write(path, doc) {
            eprintln!("error: could not write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("(series written to {path})");
    }
    ExitCode::SUCCESS
}

fn cmd_lint(files: &[String]) -> ExitCode {
    let mut checked = 0usize;
    let mut failed = false;
    let mut check = |name: &str, spec: Result<Spec, String>| {
        checked += 1;
        let spec = match spec {
            Ok(spec) => spec,
            Err(err) => {
                eprintln!("FAIL {name}: {err}");
                failed = true;
                return;
            }
        };
        // Canonical round trip: serialize ∘ parse must be the identity on
        // the data model.
        match parse(&serialize(&spec)) {
            Ok(reparsed) if reparsed == spec => {}
            Ok(_) => {
                eprintln!("FAIL {name}: serialize/parse round trip altered the spec");
                failed = true;
                return;
            }
            Err(err) => {
                eprintln!("FAIL {name}: canonical form does not reparse: {err}");
                failed = true;
                return;
            }
        }
        match spec.lint() {
            Ok(points) => println!("ok   {name}: {points} point(s)"),
            Err(err) => {
                eprintln!("FAIL {name}: {err}");
                failed = true;
            }
        }
    };
    for entry in registry::ENTRIES {
        check(entry.name, entry.spec().map_err(|err| err.to_string()));
    }
    for file in files {
        check(file, load_spec(file));
    }
    println!("linted {checked} spec(s)");
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    let mut json_path: Option<&str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => match iter.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("error: --json needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let cwd = match std::env::current_dir() {
        Ok(cwd) => cwd,
        Err(err) => {
            eprintln!("error: cannot determine working directory: {err}");
            return ExitCode::FAILURE;
        }
    };
    let Some(root) = orthrus_analysis::find_workspace_root(&cwd) else {
        eprintln!("error: no workspace root (Cargo.toml + crates/) above {cwd:?}");
        return ExitCode::FAILURE;
    };
    let report = match orthrus_analysis::analyze_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: analysis walk failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(path, report.to_json()) {
            eprintln!("error: could not write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("(report written to {path})");
    }
    for violation in &report.violations {
        eprintln!("{violation}");
    }
    let unsafe_total = report.unsafe_inventory.len();
    let unsafe_justified = report
        .unsafe_inventory
        .iter()
        .filter(|u| u.has_safety)
        .count();
    println!(
        "analyzed {} file(s): {} violation(s), {} suppression(s), \
         {unsafe_justified}/{unsafe_total} unsafe site(s) justified",
        report.files_scanned,
        report.violations.len(),
        report.suppressions.len(),
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") if args.len() == 1 => cmd_list(),
        Some("show") if args.len() == 2 => cmd_show(&args[1]),
        Some("run") => cmd_run(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        _ => usage(),
    }
}
